"""Deterministic in-process simulated MPI with virtual time.

:class:`World` runs an SPMD ``program(comm, *args)`` on ``nranks`` ranks
on one of two backends (see ``docs/SIMMPI.md`` for the full contract):

- **threads** — one OS thread per rank behind a token-passing scheduler
  that allows exactly one rank to run at a time and always picks the
  lowest-numbered runnable rank.  Programs are plain functions calling
  the blocking :class:`Communicator` API.
- **events** — a single-threaded virtual-clock event loop
  (:mod:`repro.simmpi.events`) that drives *generator coroutine*
  programs yielding :class:`~repro.simmpi.events.MpiOp` descriptors,
  scheduling the lowest-clock runnable rank next (ties broken by rank
  id).  No threads are created, so thousand-rank worlds are cheap;
  with ``backend="events"`` per-rank clocks and counters live in one
  array-backed :class:`~repro.simmpi.state.RankLedger`.

The default ``backend="auto"`` dispatches on the program: generator
functions run on the event loop, plain functions on threads — so every
existing call site is unchanged.  Both backends share the same
accounting code paths (:meth:`Communicator.isend`,
:meth:`World._try_complete_recv`, :meth:`World._complete_collective`),
so per-rank virtual clocks come out bit-identical between them.

Virtual time: ranks advance their own :class:`~repro.simmpi.clock.VirtualClock`
for compute via :meth:`Communicator.compute`; communication calls charge
MPI time through the world's :class:`~repro.simmpi.clock.CostModel`.  The
per-rank busy/MPI split is what the paper's Figure 7 reports via
``MPI_Wait`` timing.

Semantics implemented: blocking/nonblocking point-to-point with tag and
ANY_SOURCE/ANY_TAG matching (FIFO per channel), ``sendrecv``,
``waitany``, barrier, broadcast, reduce/allreduce (sum/min/max),
gather/allgather/scatter/alltoall, communicator ``split`` (sub-groups
with isolated message contexts), and deadlock detection with a state
dump bounded at large worlds.
"""

from __future__ import annotations

import copy as _copy
import inspect
import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .clock import CostModel, VirtualClock, ZeroCostModel
from .state import ClockView, RankLedger, StatsView

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Status",
    "Request",
    "Communicator",
    "World",
    "DeadlockError",
    "CollectiveMismatchError",
    "RankFailedError",
]

ANY_SOURCE = -1
ANY_TAG = -1

_SCHEDULER = -1


class DeadlockError(RuntimeError):
    """No rank can make progress and at least one has not finished."""


class CollectiveMismatchError(RuntimeError):
    """Ranks disagree on which collective they are executing."""


class RankFailedError(RuntimeError):
    """A rank's program raised; carries the original exception."""

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} raised {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


class _Abort(BaseException):
    """Internal: unwind a rank thread after another rank failed."""


@dataclass(frozen=True)
class Status:
    """Completion information of a receive."""

    source: int
    tag: int
    nbytes: int


def _payload_copy(data: Any) -> tuple[Any, int]:
    """Copy a message payload, returning (copy, size-in-bytes)."""
    if isinstance(data, np.ndarray):
        return data.copy(), data.nbytes
    if np.isscalar(data):
        return data, 8
    cp = _copy.deepcopy(data)
    return cp, 64  # nominal size for small pickled objects


@dataclass
class _Message:
    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    send_time: float


class Request:
    """Handle for a nonblocking operation; complete with
    :meth:`Communicator.wait` / :meth:`Communicator.waitall`."""

    def __init__(self, kind: str, owner: int, src: int = ANY_SOURCE, tag: int = ANY_TAG,
                 buffer: np.ndarray | None = None) -> None:
        self.kind = kind  # 'send' | 'recv'
        self.owner = owner
        self.src = src
        self.tag = tag
        self.buffer = buffer
        self.completed = kind == "send"  # eager sends complete at post
        self.data: Any = None
        self.status: Status | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} owner={self.owner} src={self.src} tag={self.tag} {state}>"


@dataclass
class _BlockInfo:
    """Why a rank is blocked, consumed by the scheduler."""

    kind: str  # 'recv' | 'collective'
    request: Request | None = None
    post_time: float = 0.0
    coll_seq: int = -1
    coll_kind: str = ""
    coll_payload: Any = None
    coll_root: int = 0
    coll_op: str = ""
    coll_result: Any = None
    coll_group: tuple = ()
    coll_ctx: Any = 0
    comm: "Communicator | None" = None


@dataclass
class RankStats:
    """Per-rank traffic counters (Figure 7's raw material)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    collectives: int = 0


class Communicator:
    """Per-rank MPI-like interface. Created by :class:`World`; user
    programs receive one as their first argument.

    A communicator may be the world communicator or a sub-communicator
    created by :meth:`split`; sub-communicators share the rank's clock
    and statistics but have an isolated message context (tags do not
    cross communicators) and their own rank numbering.
    """

    def __init__(
        self,
        world: "World",
        rank: int,
        group: tuple[int, ...] | None = None,
        ctx_id=0,
        clock: VirtualClock | None = None,
        stats: "RankStats | None" = None,
    ) -> None:
        self._world = world
        self._grank = rank  # global (world) rank
        self._group = group  # tuple of global ranks, or None = world
        self._ctx = ctx_id
        self.clock = clock if clock is not None else VirtualClock()
        self.stats = stats if stats is not None else RankStats()
        self._coll_seq = 0
        self._split_seq = 0

    # ---- identity ----------------------------------------------------

    @property
    def rank(self) -> int:
        if self._group is None:
            return self._grank
        return self._group.index(self._grank)

    @property
    def size(self) -> int:
        return self._world.nranks if self._group is None else len(self._group)

    @property
    def group(self) -> tuple[int, ...]:
        """Global ranks of this communicator's members."""
        return self._group if self._group is not None else tuple(range(self._world.nranks))

    def _to_global(self, local: int) -> int:
        if not (0 <= local < self.size):
            raise ValueError(f"rank {local} out of range 0..{self.size - 1}")
        return self.group[local]

    def _to_local(self, global_rank: int) -> int:
        return self.group.index(global_rank)

    def split(self, color: int, key: int | None = None) -> "Communicator | None":
        """Collective: partition this communicator by ``color``; members
        of the same color form a new communicator ordered by ``key``
        (default: current rank).  ``color=None`` returns None (the MPI
        ``MPI_UNDEFINED`` idiom)."""
        me = (color, key if key is not None else self.rank, self.rank)
        data = self.allgather(me)
        seq = self._split_seq
        self._split_seq += 1
        return self._split_result(data, color, seq)

    def _split_result(self, data: list, color: int, seq: int) -> "Communicator | None":
        """Build the sub-communicator from an allgathered ``(color, key,
        rank)`` list — the post-collective half of :meth:`split`, shared
        with the event-loop backend's ``split`` op."""
        if color is None:
            return None
        members = sorted((k, r) for c, k, r in data if c == color)
        group = tuple(self._to_global(r) for _, r in members)
        return Communicator(
            self._world,
            self._grank,
            group=group,
            ctx_id=(self._ctx, seq, color),
            clock=self.clock,
            stats=self.stats,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Communicator rank={self.rank}/{self.size} ctx={self._ctx}>"

    # ---- time --------------------------------------------------------

    def compute(self, seconds: float) -> None:
        """Advance this rank's virtual clock by a compute phase."""
        self.clock.advance_compute(seconds)

    # ---- point to point ------------------------------------------------

    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking (eager/buffered) send; completes immediately."""
        w = self._world
        gdest = self._to_global(dest)
        payload, nbytes = _payload_copy(data)
        self.clock.charge_mpi(w.cost_model.message_overhead(self._grank, gdest))
        msg = _Message(self._grank, gdest, tag, payload, nbytes, self.clock.now)
        w._mailboxes.setdefault((self._grank, gdest, self._ctx), deque()).append(msg)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += nbytes
        if self.clock.tracer is not None:
            self.clock.tracer.event(
                "mpi", "send", self.clock.now,
                track=self.clock.track or ("rank", self._grank),
                dst=gdest, tag=tag, bytes=nbytes,
            )
        return Request("send", self._grank)

    def send(self, data: Any, dest: int, tag: int = 0) -> None:
        """Blocking send (buffered, so identical to isend+wait)."""
        self.wait(self.isend(data, dest, tag))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              buffer: np.ndarray | None = None) -> Request:
        """Post a nonblocking receive.  If ``buffer`` is given the payload
        is copied into it on completion, else it is returned by wait()."""
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        req = Request("recv", self._grank, gsource, tag, buffer)
        req.comm = self
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             buffer: np.ndarray | None = None) -> Any:
        """Blocking receive; returns the payload (or fills ``buffer``)."""
        return self.wait(self.irecv(source, tag, buffer))

    def sendrecv(self, senddata: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 buffer: np.ndarray | None = None) -> Any:
        """Combined send+receive (deadlock-free halo-exchange primitive)."""
        self.isend(senddata, dest, sendtag)
        return self.recv(source, recvtag, buffer)

    def wait(self, request: Request) -> Any:
        """Complete one request, blocking as needed; returns recv payload."""
        if request.owner != self._grank:
            raise ValueError("cannot wait on another rank's request")
        if request.completed:
            return request.data
        # Try immediate match; otherwise block.
        if not self._world._try_complete_recv(self, request, post_time=self.clock.now):
            self._world._block(self._grank, _BlockInfo("recv", request, self.clock.now))
        return request.data

    def waitall(self, requests: list[Request]) -> list[Any]:
        """Complete a list of requests in order; returns recv payloads."""
        return [self.wait(r) for r in requests]

    def waitany(self, requests: list[Request]) -> tuple[int, Any]:
        """Complete (at least) one request; returns (index, payload).

        Completed requests are preferred; otherwise pending receives are
        polled in order and the first that can complete is returned,
        blocking on the first request only when none is ready (a fair
        deterministic approximation of MPI_Waitany).
        """
        if not requests:
            raise ValueError("waitany needs at least one request")
        for i, r in enumerate(requests):
            if r.completed:
                return i, r.data
        for i, r in enumerate(requests):
            if self.test(r):
                return i, r.data
        return 0, self.wait(requests[0])

    def test(self, request: Request) -> bool:
        """Nonblocking completion test (no time charged unless completed)."""
        if request.completed:
            return True
        return self._world._try_complete_recv(self, request, post_time=self.clock.now)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Check for a matching message without receiving it."""
        gsource = source if source == ANY_SOURCE else self._to_global(source)
        found = self._world._find_message(self._grank, gsource, tag, self._ctx)
        if found is None:
            return None
        _, _, msg = found
        return Status(self._to_local(msg.src), msg.tag, msg.nbytes)

    # ---- collectives --------------------------------------------------

    def barrier(self) -> None:
        self._collective("barrier", None)

    def bcast(self, data: Any, root: int = 0) -> Any:
        return self._collective("bcast", data, root=root)

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Any:
        """Reduce to root; other ranks get None."""
        return self._collective("reduce", value, root=root, reduce_op=op)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        return self._collective("allreduce", value, reduce_op=op)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        return self._collective("gather", value, root=root)

    def allgather(self, value: Any) -> list[Any]:
        return self._collective("allgather", value)

    def scatter(self, values: list[Any] | None, root: int = 0) -> Any:
        return self._collective("scatter", values, root=root)

    def alltoall(self, values: list[Any]) -> list[Any]:
        """Each rank supplies one value per peer; receives one from each
        (result[i] is what rank i sent to this rank)."""
        if len(values) != self.size:
            raise ValueError("alltoall needs exactly one value per rank")
        return self._collective("alltoall", values)

    def _make_coll_info(self, kind: str, payload: Any, root: int = 0,
                        reduce_op: str = "sum") -> _BlockInfo:
        """Record entry into a collective (sequence number, stats, frozen
        payload copy) — the accounting both backends share."""
        seq = self._coll_seq
        self._coll_seq += 1
        self.stats.collectives += 1
        return _BlockInfo(
            "collective",
            post_time=self.clock.now,
            coll_seq=seq,
            coll_kind=kind,
            coll_payload=_payload_copy(payload)[0] if payload is not None else None,
            coll_root=root,
            coll_op=reduce_op,
            coll_group=self.group,
            coll_ctx=self._ctx,
            comm=self,
        )

    def _collective(self, kind: str, payload: Any, root: int = 0, reduce_op: str = "sum") -> Any:
        info = self._make_coll_info(kind, payload, root, reduce_op)
        if self.size == 1:
            self._world._complete_collective([info], [self])
        else:
            self._world._block(self._grank, info)
        return info.coll_result


#: Blocked ranks shown verbatim at each end of a deadlock dump; larger
#: worlds are summarized (a 4096-rank deadlock must not print megabytes).
_DEADLOCK_DUMP_RANKS = 10


def _format_blocked(rank: int, info: _BlockInfo) -> str:
    if info.kind == "recv":
        req = info.request
        return (
            f"  rank {rank}: recv(source={req.src}, tag={req.tag}) "
            f"at t={info.post_time:.3e}"
        )
    return f"  rank {rank}: collective #{info.coll_seq} {info.coll_kind!r}"


def _deadlock_message(blocked: dict[int, _BlockInfo]) -> str:
    """Deadlock state dump, bounded at large worlds: every blocked rank
    up to ``2 * _DEADLOCK_DUMP_RANKS``, else the first/last 10 plus
    per-kind counts of the elided middle."""
    lines = [f"deadlock: {len(blocked)} rank(s) blocked, none can progress"]
    items = sorted(blocked.items())
    if len(items) <= 2 * _DEADLOCK_DUMP_RANKS:
        lines.extend(_format_blocked(r, info) for r, info in items)
        return "\n".join(lines)
    head = items[:_DEADLOCK_DUMP_RANKS]
    tail = items[-_DEADLOCK_DUMP_RANKS:]
    elided = items[_DEADLOCK_DUMP_RANKS:-_DEADLOCK_DUMP_RANKS]
    counts = Counter(info.kind for _, info in elided)
    summary = ", ".join(f"{n} {kind}" for kind, n in sorted(counts.items()))
    lines.extend(_format_blocked(r, info) for r, info in head)
    lines.append(f"  ... {len(elided)} more blocked rank(s) elided ({summary}) ...")
    lines.extend(_format_blocked(r, info) for r, info in tail)
    return "\n".join(lines)


class World:
    """An ``nranks``-rank simulated MPI world.

    Parameters
    ----------
    nranks:
        Number of ranks.
    cost_model:
        Prices messages and collectives;
        defaults to :class:`~repro.simmpi.clock.ZeroCostModel`.
    backend:
        ``"auto"`` (default) runs generator-coroutine programs on the
        single-threaded event loop and plain functions on the threaded
        scheduler; ``"events"`` requires generator programs and stores
        per-rank clocks/stats in an array-backed
        :class:`~repro.simmpi.state.RankLedger`; ``"threads"`` forces
        the threaded scheduler (generator programs are driven through a
        blocking trampoline — the parity oracle for the event loop).
    """

    BACKENDS = ("auto", "threads", "events")

    def __init__(self, nranks: int, cost_model: CostModel | None = None,
                 backend: str = "auto") -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.nranks = nranks
        self.cost_model = cost_model or ZeroCostModel()
        self.backend = backend
        self.last_backend: str | None = None
        self._mailboxes: dict[tuple[int, int], deque[_Message]] = {}
        if backend == "events":
            self.ledger: RankLedger | None = RankLedger(nranks)
            self.comms = [
                Communicator(self, r, clock=ClockView(self.ledger, r),
                             stats=StatsView(self.ledger, r))
                for r in range(nranks)
            ]
        else:
            self.ledger = None
            self.comms = [Communicator(self, r) for r in range(nranks)]
        # Scheduling state (initialized per run()):
        self._cv = threading.Condition()
        self._turn = _SCHEDULER
        self._blocked: dict[int, _BlockInfo] = {}
        self._finished: set[int] = set()
        self._failure: RankFailedError | None = None
        self._results: list[Any] = [None] * nranks

    # ---- public API ----------------------------------------------------

    def _resolve_backend(self, program: Callable[..., Any]) -> str:
        generator = inspect.isgeneratorfunction(program)
        if self.backend == "auto":
            return "events" if generator else "threads"
        if self.backend == "events" and not generator:
            raise TypeError(
                "backend='events' runs generator-coroutine programs that "
                "yield MpiOp descriptors (see repro.simmpi.events.op); got "
                f"a plain callable {program!r}"
            )
        return self.backend

    def run(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``program(comm, *args, **kwargs)`` on every rank; returns
        the per-rank return values."""
        backend = self._resolve_backend(program)
        self.last_backend = backend
        self._blocked.clear()
        self._finished.clear()
        self._failure = None
        self._results = [None] * self.nranks

        # Rank threads do not inherit the caller's ContextVar scope, so
        # hand an active tracer to each rank's clock for the duration of
        # the run (spans land on per-rank tracks).
        from ..obs.metrics import active_metrics
        from ..obs.tracer import active_tracer

        tracer = active_tracer()
        if tracer is not None:
            for r, comm in enumerate(self.comms):
                comm.clock.tracer = tracer
                comm.clock.track = ("rank", r)

        # Per-rank counters are published as deltas over the whole run
        # (clocks and RankStats accumulate across runs of one World), so
        # rank threads never touch the registry.
        metrics = active_metrics()
        if metrics is not None:
            baseline = [
                (c.clock.mpi_time, c.stats.messages_sent, c.stats.bytes_sent,
                 c.stats.messages_received, c.stats.bytes_received,
                 c.stats.collectives)
                for c in self.comms
            ]

        try:
            if backend == "events":
                from .events import EventLoop

                EventLoop(self).run(program, args, kwargs)
            else:
                self._run_threads(program, args, kwargs)
        finally:
            if tracer is not None:
                for comm in self.comms:
                    comm.clock.tracer = None
            if metrics is not None:
                for r, c in enumerate(self.comms):
                    wait0, ms0, bs0, mr0, br0, coll0 = baseline[r]
                    metrics.inc("simmpi_messages_total",
                                c.stats.messages_sent - ms0,
                                rank=r, direction="sent")
                    metrics.inc("simmpi_messages_total",
                                c.stats.messages_received - mr0,
                                rank=r, direction="received")
                    metrics.inc("simmpi_bytes_total",
                                c.stats.bytes_sent - bs0,
                                rank=r, direction="sent")
                    metrics.inc("simmpi_bytes_total",
                                c.stats.bytes_received - br0,
                                rank=r, direction="received")
                    metrics.inc("simmpi_collectives_total",
                                c.stats.collectives - coll0, rank=r)
                    metrics.inc("simmpi_wait_seconds_total",
                                c.clock.mpi_time - wait0, rank=r)
                metrics.inc("simmpi_runs_total", ranks=self.nranks)
        if self._failure is not None:
            raise self._failure
        return list(self._results)

    @property
    def clocks(self) -> list[VirtualClock]:
        return [c.clock for c in self.comms]

    @property
    def stats(self) -> list[RankStats]:
        return [c.stats for c in self.comms]

    @property
    def max_time(self) -> float:
        if self.ledger is not None:
            return self.ledger.max_now()
        return max(c.clock.now for c in self.comms)

    def mpi_fraction(self) -> float:
        """Mean fraction of rank time spent in MPI (Figure 7's metric)."""
        if self.ledger is not None:
            return self.ledger.mean_mpi_fraction()
        fracs = [c.clock.mpi_fraction for c in self.comms]
        return float(np.mean(fracs))

    # ---- internal: rank threads ----------------------------------------

    def _run_threads(self, program: Callable, args: tuple, kwargs: dict) -> None:
        threads = [
            threading.Thread(
                target=self._thread_body, args=(r, program, args, kwargs), daemon=True
            )
            for r in range(self.nranks)
        ]
        with self._cv:
            self._turn = _SCHEDULER
        for t in threads:
            t.start()
        try:
            self._scheduler_loop()
        except BaseException:
            # Make sure every rank thread can unwind before re-raising.
            with self._cv:
                if self._failure is None:
                    self._failure = RankFailedError(-1, DeadlockError("scheduler aborted"))
                self._blocked.clear()
                self._cv.notify_all()
            raise
        finally:
            for t in threads:
                t.join(timeout=10.0)

    def _thread_body(self, rank: int, program: Callable, args: tuple, kwargs: dict) -> None:
        try:
            self._wait_for_turn(rank)
            result = program(self.comms[rank], *args, **kwargs)
            if inspect.isgenerator(result):
                # Generator program forced onto the threaded backend:
                # drive it through the blocking Communicator API so both
                # backends execute identical accounting (the clock-parity
                # oracle).
                from .events import drive_blocking

                result = drive_blocking(self.comms[rank], result)
            self._results[rank] = result
        except _Abort:
            return
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            with self._cv:
                if self._failure is None:
                    self._failure = RankFailedError(rank, exc)
        finally:
            with self._cv:
                self._finished.add(rank)
                self._blocked.pop(rank, None)
                self._turn = _SCHEDULER
                self._cv.notify_all()

    def _wait_for_turn(self, rank: int) -> None:
        with self._cv:
            while self._turn != rank:
                if self._failure is not None:
                    raise _Abort()
                self._cv.wait()
            if self._failure is not None:
                raise _Abort()

    def _yield_to_scheduler(self, rank: int) -> None:
        with self._cv:
            self._turn = _SCHEDULER
            self._cv.notify_all()
        self._wait_for_turn(rank)

    def _block(self, rank: int, info: _BlockInfo) -> None:
        """Called from a rank thread: record the blockage and yield."""
        with self._cv:
            self._blocked[rank] = info
        self._yield_to_scheduler(rank)
        # On resume the scheduler has fulfilled the op (or aborted us).

    # ---- internal: scheduler --------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._cv:
                while self._turn != _SCHEDULER:
                    self._cv.wait()
                if self._failure is not None:
                    self._cv.notify_all()  # wake and abort everyone
                    if len(self._finished) == self.nranks:
                        return
                if len(self._finished) == self.nranks:
                    return
            progressed = self._fulfill_ready()
            with self._cv:
                runnable = [
                    r
                    for r in range(self.nranks)
                    if r not in self._finished and r not in self._blocked
                ]
                if self._failure is not None:
                    # Abort blocked ranks so their threads unwind.
                    for r in list(self._blocked):
                        self._blocked.pop(r)
                    self._cv.notify_all()
                    runnable = []
                    if len(self._finished) == self.nranks:
                        return
                    continue
                if not runnable:
                    if not progressed:
                        self._raise_deadlock()
                    continue
                self._turn = runnable[0]
                self._cv.notify_all()

    def _raise_deadlock(self) -> None:
        err = DeadlockError(_deadlock_message(self._blocked))
        with self._cv:
            self._failure = RankFailedError(-1, err)
            self._failure.__cause__ = err
            for r in list(self._blocked):
                self._blocked.pop(r)
            self._cv.notify_all()
        raise err

    # ---- internal: op fulfillment ----------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range 0..{self.nranks - 1}")

    def _find_message(self, dst: int, source: int, tag: int, ctx=0) -> tuple[tuple, int, _Message] | None:
        """Locate the first matching message; returns (key, index, msg)."""
        sources = [source] if source != ANY_SOURCE else list(range(self.nranks))
        for src in sources:
            q = self._mailboxes.get((src, dst, ctx))
            if not q:
                continue
            for i, msg in enumerate(q):
                if tag == ANY_TAG or msg.tag == tag:
                    return (src, dst, ctx), i, msg
        return None

    def _try_complete_recv(self, comm: Communicator, req: Request, post_time: float) -> bool:
        rcomm = getattr(req, "comm", None) or comm
        found = self._find_message(rcomm._grank, req.src, req.tag, rcomm._ctx)
        if found is None:
            return False
        key, idx, msg = found
        q = self._mailboxes[key]
        del q[idx]
        arrival = msg.send_time + self.cost_model.transfer_time(msg.src, msg.dst, msg.nbytes)
        comm.clock.advance_mpi(max(arrival, post_time))
        comm.clock.charge_mpi(self.cost_model.message_overhead(msg.src, msg.dst))
        if req.buffer is not None and isinstance(msg.payload, np.ndarray):
            np.copyto(req.buffer, msg.payload.reshape(req.buffer.shape))
            req.data = req.buffer
        else:
            req.data = msg.payload
        req.status = Status(rcomm._to_local(msg.src), msg.tag, msg.nbytes)
        req.completed = True
        comm.stats.messages_received += 1
        comm.stats.bytes_received += msg.nbytes
        if comm.clock.tracer is not None:
            comm.clock.tracer.event(
                "mpi", "recv", comm.clock.now,
                track=comm.clock.track or ("rank", comm._grank),
                src=msg.src, tag=msg.tag, bytes=msg.nbytes,
            )
        return True

    def _fulfill_ready(self) -> bool:
        """Complete any blocked ops that can now finish. Returns True if
        anything progressed."""
        progressed = False
        with self._cv:
            blocked_now = dict(self._blocked)
        # Receives.
        for rank, info in blocked_now.items():
            if info.kind != "recv":
                continue
            comm = self.comms[rank]
            if self._try_complete_recv(comm, info.request, info.post_time):
                with self._cv:
                    self._blocked.pop(rank, None)
                progressed = True
        # Collectives: a collective completes when *every member of its
        # communicator* is blocked on a collective of the same context.
        with self._cv:
            blocked_now = dict(self._blocked)
        colls = {r: i for r, i in blocked_now.items() if i.kind == "collective"}
        by_ctx: dict = {}
        for r, info in colls.items():
            by_ctx.setdefault(info.coll_ctx, {})[r] = info
        for ctx, members_blocked in by_ctx.items():
            group = next(iter(members_blocked.values())).coll_group
            if not all(r in members_blocked for r in group):
                continue  # someone is still computing (or has finished: deadlock)
            infos = [members_blocked[r] for r in group]
            kinds = {i.coll_kind for i in infos}
            roots = {i.coll_root for i in infos}
            if len(kinds) > 1 or len(roots) > 1:
                raise CollectiveMismatchError(
                    f"ranks disagree on collective: kinds={kinds}, roots={roots}"
                )
            comms = [i.comm for i in infos]
            self._complete_collective(infos, comms)
            with self._cv:
                for r in group:
                    self._blocked.pop(r, None)
            progressed = True
        return progressed

    def _complete_collective(self, infos: list[_BlockInfo], comms: list[Communicator]) -> None:
        kind = infos[0].coll_kind
        root = infos[0].coll_root
        op = infos[0].coll_op
        payloads = [i.coll_payload for i in infos]
        nbytes = max(
            (p.nbytes if isinstance(p, np.ndarray) else 8)
            for p in payloads
        ) if any(p is not None for p in payloads) else 0

        if kind == "barrier":
            results = [None] * len(infos)
        elif kind == "bcast":
            data = payloads[root]
            results = [_payload_copy(data)[0] for _ in infos]
        elif kind in ("reduce", "allreduce"):
            total = _reduce_payloads(payloads, op)
            if kind == "allreduce":
                results = [_payload_copy(total)[0] for _ in infos]
            else:
                results = [
                    _payload_copy(total)[0] if c.rank == root else None for c in comms
                ]
        elif kind == "gather":
            gathered = [_payload_copy(p)[0] for p in payloads]
            results = [gathered if c.rank == root else None for c in comms]
        elif kind == "allgather":
            gathered = [_payload_copy(p)[0] for p in payloads]
            results = [list(gathered) for _ in infos]
        elif kind == "scatter":
            values = payloads[root]
            if values is None or len(values) != len(comms):
                raise ValueError("scatter root must supply one value per rank")
            results = [_payload_copy(v)[0] for v in values]
        elif kind == "alltoall":
            results = [
                [_payload_copy(payloads[i][j])[0] for i in range(len(comms))]
                for j in range(len(comms))
            ]
        else:  # pragma: no cover - guarded by Communicator API
            raise ValueError(f"unknown collective {kind!r}")

        t_done = max(c.clock.now for c in comms) + self.cost_model.collective_time(
            len(comms), nbytes
        )
        for info, c, res in zip(infos, comms, results):
            c.clock.advance_mpi(t_done)
            info.coll_result = res
            if c.clock.tracer is not None:
                c.clock.tracer.event(
                    "mpi", f"collective:{kind}", c.clock.now,
                    track=c.clock.track or ("rank", c._grank),
                    ranks=len(comms), bytes=nbytes, op=op,
                )


def _reduce_payloads(payloads: list[Any], op: str) -> Any:
    ops = {
        "sum": lambda a, b: a + b,
        "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
        "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    }
    if op not in ops:
        raise ValueError(f"unsupported reduction op {op!r}; use sum/min/max")
    f = ops[op]
    acc = payloads[0]
    for p in payloads[1:]:
        acc = f(acc, p)
    return acc
