"""Cartesian process grids and structured halo exchange.

The structured-mesh applications decompose their domain with "a standard
cartesian mesh decomposition ... over MPI, with ghost cell exchanges
triggered as needed before each bulk parallel computational step"
(paper Section 4).  This module provides:

- :func:`dims_create` — balanced factorization of the rank count into a
  process grid (the MPI_Dims_create algorithm), instant even at 10k+
  ranks because it prime-factorizes instead of searching divisors;
- :class:`CartGrid` — rank ↔ coordinate mapping and neighbor lookup;
- :func:`neighbor_table` — the whole grid's face-neighbor graph as flat
  arrays, built in O(nranks · ndims) (no per-rank coordinate loops);
- :func:`local_range` — block distribution of a global extent;
- :class:`HaloSpec` / :func:`exchange_halos` — depth-``d`` ghost-layer
  exchange of an N-d numpy array, dimension by dimension so that corner
  ghosts arrive correctly (:func:`exchange_halos_co` is the generator
  twin for ``World(backend="events")`` programs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .comm import Communicator

__all__ = [
    "dims_create",
    "prime_factors",
    "CartGrid",
    "neighbor_table",
    "local_range",
    "exchange_halos",
    "exchange_halos_co",
]


def prime_factors(n: int) -> list[int]:
    """Prime factorization of ``n`` (ascending, with multiplicity) by
    trial division over 2 and the odd numbers up to √n — O(√n) total, so
    grid creation at 10k ranks costs microseconds even for primes."""
    if n < 1:
        raise ValueError("n must be positive")
    factors: list[int] = []
    while n % 2 == 0:
        factors.append(2)
        n //= 2
    f = 3
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 2
    if n > 1:
        factors.append(n)
    return factors


def dims_create(nranks: int, ndims: int) -> tuple[int, ...]:
    """Factor ``nranks`` into ``ndims`` factors as evenly as possible,
    largest first — the MPI_Dims_create contract."""
    if nranks < 1 or ndims < 1:
        raise ValueError("nranks and ndims must be positive")
    dims = [1] * ndims
    # Peel each prime factor, largest first, onto the smallest dim.
    for p in sorted(prime_factors(nranks), reverse=True):
        dims[dims.index(min(dims))] *= p
    return tuple(sorted(dims, reverse=True))


def local_range(global_n: int, parts: int, index: int) -> tuple[int, int]:
    """Block distribution of ``global_n`` items over ``parts`` owners;
    returns the half-open [start, end) of block ``index``.  The first
    ``global_n % parts`` blocks get one extra item."""
    if not (0 <= index < parts):
        raise ValueError(f"index {index} out of range for {parts} parts")
    base, extra = divmod(global_n, parts)
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return start, start + size


@dataclass(frozen=True)
class CartGrid:
    """A Cartesian process grid (row-major rank ordering, like MPI)."""

    dims: tuple[int, ...]
    periodic: tuple[bool, ...] | None = None

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.dims):
            raise ValueError("all grid dimensions must be >= 1")
        if self.periodic is not None and len(self.periodic) != len(self.dims):
            raise ValueError("periodic flags must match dimensionality")

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        return int(np.prod(self.dims))

    def is_periodic(self, dim: int) -> bool:
        return bool(self.periodic and self.periodic[dim])

    def coords(self, rank: int) -> tuple[int, ...]:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.ndims:
            raise ValueError("coordinate dimensionality mismatch")
        r = 0
        for c, d in zip(coords, self.dims):
            if not (0 <= c < d):
                raise ValueError(f"coordinate {coords} outside grid {self.dims}")
            r = r * d + c
        return r

    def neighbor(self, rank: int, dim: int, disp: int) -> int | None:
        """Rank displaced ``disp`` along ``dim``; None outside a
        non-periodic boundary."""
        coords = list(self.coords(rank))
        c = coords[dim] + disp
        if self.is_periodic(dim):
            c %= self.dims[dim]
        elif not (0 <= c < self.dims[dim]):
            return None
        coords[dim] = c
        return self.rank(tuple(coords))

    def neighbors(self, rank: int) -> dict[tuple[int, int], int]:
        """All face neighbors as {(dim, ±1): rank}."""
        out = {}
        for dim in range(self.ndims):
            for disp in (-1, 1):
                n = self.neighbor(rank, dim, disp)
                if n is not None:
                    out[(dim, disp)] = n
        return out


def neighbor_table(grid: CartGrid) -> dict[tuple[int, int], np.ndarray]:
    """Face-neighbor graph of the whole grid as flat arrays.

    Returns ``{(dim, ±1): neighbors}`` where ``neighbors[r]`` is the rank
    displaced ±1 along ``dim`` from rank ``r``, or ``-1`` outside a
    non-periodic boundary.  Built with vectorized index arithmetic — one
    O(nranks) pass per (dim, disp), so a 4096-rank 3-d grid costs six
    small array ops instead of ~25k ``coords``/``rank`` round-trips.
    """
    size = grid.size
    ranks = np.arange(size, dtype=np.int64)
    # Row-major strides: stride[d] = prod(dims[d+1:]).
    strides = np.ones(grid.ndims, dtype=np.int64)
    for d in range(grid.ndims - 2, -1, -1):
        strides[d] = strides[d + 1] * grid.dims[d + 1]
    table: dict[tuple[int, int], np.ndarray] = {}
    for dim in range(grid.ndims):
        extent = grid.dims[dim]
        coord = (ranks // strides[dim]) % extent
        for disp in (-1, 1):
            shifted = coord + disp
            if grid.is_periodic(dim):
                wrapped = shifted % extent
                table[(dim, disp)] = ranks + (wrapped - coord) * strides[dim]
            else:
                nbr = ranks + disp * strides[dim]
                valid = (shifted >= 0) & (shifted < extent)
                table[(dim, disp)] = np.where(valid, nbr, -1)
    return table


def _face_slices(shape: tuple[int, ...], dim: int, depth: int):
    """Send/recv slab slices for one dimension of a halo'd array.

    Returns (send_low, recv_low, send_high, recv_high): the interior slab
    adjacent to each ghost region and the ghost region itself.
    """
    full = [slice(None)] * len(shape)
    send_low = list(full)
    send_low[dim] = slice(depth, 2 * depth)
    recv_low = list(full)
    recv_low[dim] = slice(0, depth)
    send_high = list(full)
    send_high[dim] = slice(shape[dim] - 2 * depth, shape[dim] - depth)
    recv_high = list(full)
    recv_high[dim] = slice(shape[dim] - depth, shape[dim])
    return tuple(send_low), tuple(recv_low), tuple(send_high), tuple(recv_high)


def exchange_halos(
    comm: Communicator,
    grid: CartGrid,
    local: np.ndarray,
    depth: int,
    tag_base: int = 1000,
) -> None:
    """Exchange depth-``depth`` ghost layers of ``local`` with Cartesian
    neighbors, in place.

    ``local`` must include the ghost layers (shape = interior + 2*depth in
    every decomposed dimension).  Dimensions are exchanged one at a time,
    so corner/edge ghosts are correct after the full sweep.  Boundaries of
    a non-periodic grid are left untouched (the application applies its
    physical boundary condition there).
    """
    if depth < 1:
        raise ValueError("halo depth must be >= 1")
    if local.ndim != grid.ndims:
        raise ValueError("array dimensionality must match grid")
    rank = comm.rank
    for dim in range(grid.ndims):
        if local.shape[dim] < 3 * depth:
            raise ValueError(
                f"local extent {local.shape[dim]} too small for depth {depth} halos"
            )
        lo = grid.neighbor(rank, dim, -1)
        hi = grid.neighbor(rank, dim, +1)
        s_lo, r_lo, s_hi, r_hi = _face_slices(local.shape, dim, depth)
        tag_down = tag_base + 2 * dim
        tag_up = tag_base + 2 * dim + 1
        reqs = []
        if lo is not None:
            reqs.append(comm.irecv(lo, tag_up, buffer=np.ascontiguousarray(local[r_lo])))
        if hi is not None:
            reqs.append(comm.irecv(hi, tag_down, buffer=np.ascontiguousarray(local[r_hi])))
        if lo is not None:
            comm.isend(np.ascontiguousarray(local[s_lo]), lo, tag_down)
        if hi is not None:
            comm.isend(np.ascontiguousarray(local[s_hi]), hi, tag_up)
        # Complete receives and write the ghost slabs back (the irecv
        # buffers are contiguous copies because slabs are strided views).
        results = comm.waitall(reqs)
        idx = 0
        if lo is not None:
            local[r_lo] = results[idx]
            idx += 1
        if hi is not None:
            local[r_hi] = results[idx]


def exchange_halos_co(
    comm: Communicator,
    grid: CartGrid,
    local: np.ndarray,
    depth: int,
    tag_base: int = 1000,
):
    """Generator twin of :func:`exchange_halos` for event-loop programs.

    Yields the same irecv/isend/waitall sequence (identical tags and
    posting order) as ``op`` descriptors, so a coroutine rank program can
    delegate with ``yield from exchange_halos_co(comm, grid, u, 1)`` and
    its virtual clock stays bit-identical to the blocking version run on
    the threaded backend.
    """
    from .events import op

    if depth < 1:
        raise ValueError("halo depth must be >= 1")
    if local.ndim != grid.ndims:
        raise ValueError("array dimensionality must match grid")
    rank = comm.rank
    for dim in range(grid.ndims):
        if local.shape[dim] < 3 * depth:
            raise ValueError(
                f"local extent {local.shape[dim]} too small for depth {depth} halos"
            )
        lo = grid.neighbor(rank, dim, -1)
        hi = grid.neighbor(rank, dim, +1)
        s_lo, r_lo, s_hi, r_hi = _face_slices(local.shape, dim, depth)
        tag_down = tag_base + 2 * dim
        tag_up = tag_base + 2 * dim + 1
        reqs = []
        if lo is not None:
            reqs.append((yield op.irecv(
                lo, tag_up, buffer=np.ascontiguousarray(local[r_lo]), comm=comm)))
        if hi is not None:
            reqs.append((yield op.irecv(
                hi, tag_down, buffer=np.ascontiguousarray(local[r_hi]), comm=comm)))
        if lo is not None:
            yield op.isend(np.ascontiguousarray(local[s_lo]), lo, tag_down, comm=comm)
        if hi is not None:
            yield op.isend(np.ascontiguousarray(local[s_hi]), hi, tag_up, comm=comm)
        results = yield op.waitall(reqs, comm=comm)
        idx = 0
        if lo is not None:
            local[r_lo] = results[idx]
            idx += 1
        if hi is not None:
            local[r_hi] = results[idx]
