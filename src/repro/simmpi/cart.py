"""Cartesian process grids and structured halo exchange.

The structured-mesh applications decompose their domain with "a standard
cartesian mesh decomposition ... over MPI, with ghost cell exchanges
triggered as needed before each bulk parallel computational step"
(paper Section 4).  This module provides:

- :func:`dims_create` — balanced factorization of the rank count into a
  process grid (the MPI_Dims_create algorithm);
- :class:`CartGrid` — rank ↔ coordinate mapping and neighbor lookup;
- :func:`local_range` — block distribution of a global extent;
- :class:`HaloSpec` / :func:`exchange_halos` — depth-``d`` ghost-layer
  exchange of an N-d numpy array, dimension by dimension so that corner
  ghosts arrive correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .comm import Communicator

__all__ = ["dims_create", "CartGrid", "local_range", "exchange_halos"]


def dims_create(nranks: int, ndims: int) -> tuple[int, ...]:
    """Factor ``nranks`` into ``ndims`` factors as evenly as possible,
    largest first — the MPI_Dims_create contract."""
    if nranks < 1 or ndims < 1:
        raise ValueError("nranks and ndims must be positive")
    dims = [1] * ndims
    remaining = nranks
    # Repeatedly peel the largest prime factor onto the smallest dim.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for p in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))


def local_range(global_n: int, parts: int, index: int) -> tuple[int, int]:
    """Block distribution of ``global_n`` items over ``parts`` owners;
    returns the half-open [start, end) of block ``index``.  The first
    ``global_n % parts`` blocks get one extra item."""
    if not (0 <= index < parts):
        raise ValueError(f"index {index} out of range for {parts} parts")
    base, extra = divmod(global_n, parts)
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return start, start + size


@dataclass(frozen=True)
class CartGrid:
    """A Cartesian process grid (row-major rank ordering, like MPI)."""

    dims: tuple[int, ...]
    periodic: tuple[bool, ...] | None = None

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.dims):
            raise ValueError("all grid dimensions must be >= 1")
        if self.periodic is not None and len(self.periodic) != len(self.dims):
            raise ValueError("periodic flags must match dimensionality")

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        return int(np.prod(self.dims))

    def is_periodic(self, dim: int) -> bool:
        return bool(self.periodic and self.periodic[dim])

    def coords(self, rank: int) -> tuple[int, ...]:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.ndims:
            raise ValueError("coordinate dimensionality mismatch")
        r = 0
        for c, d in zip(coords, self.dims):
            if not (0 <= c < d):
                raise ValueError(f"coordinate {coords} outside grid {self.dims}")
            r = r * d + c
        return r

    def neighbor(self, rank: int, dim: int, disp: int) -> int | None:
        """Rank displaced ``disp`` along ``dim``; None outside a
        non-periodic boundary."""
        coords = list(self.coords(rank))
        c = coords[dim] + disp
        if self.is_periodic(dim):
            c %= self.dims[dim]
        elif not (0 <= c < self.dims[dim]):
            return None
        coords[dim] = c
        return self.rank(tuple(coords))

    def neighbors(self, rank: int) -> dict[tuple[int, int], int]:
        """All face neighbors as {(dim, ±1): rank}."""
        out = {}
        for dim in range(self.ndims):
            for disp in (-1, 1):
                n = self.neighbor(rank, dim, disp)
                if n is not None:
                    out[(dim, disp)] = n
        return out


def _face_slices(shape: tuple[int, ...], dim: int, depth: int):
    """Send/recv slab slices for one dimension of a halo'd array.

    Returns (send_low, recv_low, send_high, recv_high): the interior slab
    adjacent to each ghost region and the ghost region itself.
    """
    full = [slice(None)] * len(shape)
    send_low = list(full)
    send_low[dim] = slice(depth, 2 * depth)
    recv_low = list(full)
    recv_low[dim] = slice(0, depth)
    send_high = list(full)
    send_high[dim] = slice(shape[dim] - 2 * depth, shape[dim] - depth)
    recv_high = list(full)
    recv_high[dim] = slice(shape[dim] - depth, shape[dim])
    return tuple(send_low), tuple(recv_low), tuple(send_high), tuple(recv_high)


def exchange_halos(
    comm: Communicator,
    grid: CartGrid,
    local: np.ndarray,
    depth: int,
    tag_base: int = 1000,
) -> None:
    """Exchange depth-``depth`` ghost layers of ``local`` with Cartesian
    neighbors, in place.

    ``local`` must include the ghost layers (shape = interior + 2*depth in
    every decomposed dimension).  Dimensions are exchanged one at a time,
    so corner/edge ghosts are correct after the full sweep.  Boundaries of
    a non-periodic grid are left untouched (the application applies its
    physical boundary condition there).
    """
    if depth < 1:
        raise ValueError("halo depth must be >= 1")
    if local.ndim != grid.ndims:
        raise ValueError("array dimensionality must match grid")
    rank = comm.rank
    for dim in range(grid.ndims):
        if local.shape[dim] < 3 * depth:
            raise ValueError(
                f"local extent {local.shape[dim]} too small for depth {depth} halos"
            )
        lo = grid.neighbor(rank, dim, -1)
        hi = grid.neighbor(rank, dim, +1)
        s_lo, r_lo, s_hi, r_hi = _face_slices(local.shape, dim, depth)
        tag_down = tag_base + 2 * dim
        tag_up = tag_base + 2 * dim + 1
        reqs = []
        if lo is not None:
            reqs.append(comm.irecv(lo, tag_up, buffer=np.ascontiguousarray(local[r_lo])))
        if hi is not None:
            reqs.append(comm.irecv(hi, tag_down, buffer=np.ascontiguousarray(local[r_hi])))
        if lo is not None:
            comm.isend(np.ascontiguousarray(local[s_lo]), lo, tag_down)
        if hi is not None:
            comm.isend(np.ascontiguousarray(local[s_hi]), hi, tag_up)
        # Complete receives and write the ghost slabs back (the irecv
        # buffers are contiguous copies because slabs are strided views).
        results = comm.waitall(reqs)
        idx = 0
        if lo is not None:
            local[r_lo] = results[idx]
            idx += 1
        if hi is not None:
            local[r_hi] = results[idx]
