"""Event-driven coroutine backend of the simulated MPI world.

Rank programs are *generator coroutines*: instead of calling blocking
:class:`~repro.simmpi.comm.Communicator` methods, they ``yield``
:class:`MpiOp` descriptors (built with the :class:`op` constructors) and
receive each operation's result as the value of the ``yield``
expression::

    def program(comm):
        req = yield op.irecv(src, tag)
        yield op.isend(data, dst, tag)
        payload = yield op.wait(req)
        yield op.compute(0.5)
        total = yield op.allreduce(payload.sum())
        return total

A single-threaded :class:`EventLoop` drives all ranks: the runnable rank
with the lowest virtual clock runs next (ties broken by rank id), each
rank running until it blocks on an unmatched receive or an incomplete
collective.  No OS threads are created, so 4096-rank worlds cost what
4096 generators cost.  All time/traffic accounting goes through the same
code paths as the threaded backend (``Communicator.isend``,
``World._try_complete_recv``, ``World._complete_collective``), and the
arrival-time rule ``advance_mpi(max(send_time + transfer, post_time))``
is schedule-independent, so per-rank clocks are bit-identical between
the two backends for deterministic (source- and tag-specific) programs.

Sub-communicators: ``sub = yield op.split(color, key)`` returns a real
:class:`Communicator`; address it with the ``comm=`` keyword accepted by
every constructor (``yield op.allreduce(x, comm=sub)``).

:func:`drive_blocking` is the threaded backend's trampoline: it executes
the same generator program through the blocking Communicator API — the
oracle the clock-parity tests compare the event loop against.
"""

from __future__ import annotations

import heapq
from types import GeneratorType
from typing import Any, Callable

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    Communicator,
    DeadlockError,
    RankFailedError,
    Request,
    _BlockInfo,
    _deadlock_message,
)

__all__ = ["MpiOp", "op", "EventLoop", "drive_blocking"]


class MpiOp:
    """One yielded MPI operation: a Communicator method name, its
    arguments, and optionally the sub-communicator to run it on."""

    __slots__ = ("name", "args", "kwargs", "comm")

    def __init__(self, name: str, args: tuple = (), kwargs: dict | None = None,
                 comm: Communicator | None = None) -> None:
        self.name = name
        self.args = args
        self.kwargs = kwargs or {}
        self.comm = comm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"op.{self.name}({', '.join(parts)})"


def _make_op(name: str) -> Callable[..., MpiOp]:
    def build(*args: Any, comm: Communicator | None = None, **kwargs: Any) -> MpiOp:
        return MpiOp(name, args, kwargs, comm)

    build.__name__ = name
    build.__qualname__ = f"op.{name}"
    build.__doc__ = f"Descriptor for ``Communicator.{name}(...)``."
    return build


class op:
    """Namespace of :class:`MpiOp` constructors, one per Communicator
    verb.  Every constructor accepts ``comm=`` to address a
    sub-communicator returned by ``yield op.split(...)``."""

    compute = staticmethod(_make_op("compute"))
    send = staticmethod(_make_op("send"))
    isend = staticmethod(_make_op("isend"))
    recv = staticmethod(_make_op("recv"))
    irecv = staticmethod(_make_op("irecv"))
    sendrecv = staticmethod(_make_op("sendrecv"))
    wait = staticmethod(_make_op("wait"))
    waitall = staticmethod(_make_op("waitall"))
    waitany = staticmethod(_make_op("waitany"))
    test = staticmethod(_make_op("test"))
    probe = staticmethod(_make_op("probe"))
    barrier = staticmethod(_make_op("barrier"))
    bcast = staticmethod(_make_op("bcast"))
    reduce = staticmethod(_make_op("reduce"))
    allreduce = staticmethod(_make_op("allreduce"))
    gather = staticmethod(_make_op("gather"))
    allgather = staticmethod(_make_op("allgather"))
    scatter = staticmethod(_make_op("scatter"))
    alltoall = staticmethod(_make_op("alltoall"))
    split = staticmethod(_make_op("split"))


def drive_blocking(comm: Communicator, gen: GeneratorType) -> Any:
    """Run a generator program to completion through the *blocking*
    Communicator API (used by ``World(backend="threads")`` for generator
    programs).  Every op name is a Communicator method, so the threaded
    scheduler sees exactly the calls a plain-function program would make.
    """
    value: Any = None
    while True:
        try:
            item = gen.send(value)
        except StopIteration as stop:
            return stop.value
        if not isinstance(item, MpiOp):
            raise TypeError(
                f"generator programs must yield MpiOp descriptors, got {item!r}"
            )
        target = item.comm if item.comm is not None else comm
        value = getattr(target, item.name)(*item.args, **item.kwargs)


#: Sentinel returned by op executors when the rank blocked.
_BLOCKED = object()


class EventLoop:
    """Single-threaded virtual-clock scheduler over generator ranks.

    Fills ``world._results`` / ``world._failure`` exactly like the
    threaded scheduler; :meth:`repro.simmpi.comm.World.run` handles the
    shared tracer/metrics wiring around it.
    """

    def __init__(self, world) -> None:
        self.world = world
        n = world.nranks
        self._gens: list[GeneratorType | None] = [None] * n
        self._value: list[Any] = [None] * n
        # Blocked-op continuations, keyed by world rank:
        #   ("wait", req) / ("waitall", comm, reqs, index) /
        #   ("waitany", reqs) / ("coll",) / ("split", comm, color, seq)
        self._cont: dict[int, tuple] = {}
        # Collective rendezvous: ctx -> {global rank: (info, comm)}.
        self._coll: dict[Any, dict[int, tuple[_BlockInfo, Communicator]]] = {}
        self._heap: list[tuple[float, int]] = []

    # ---- main loop ---------------------------------------------------

    def run(self, program: Callable[..., Any], args: tuple, kwargs: dict) -> None:
        w = self.world
        for r in range(w.nranks):
            gen = program(w.comms[r], *args, **kwargs)
            if not isinstance(gen, GeneratorType):  # pragma: no cover - guarded by World
                raise TypeError("event-loop programs must be generator functions")
            self._gens[r] = gen
        heap = self._heap
        for r in range(w.nranks):
            heap.append((w.comms[r].clock.now, r))
        heapq.heapify(heap)
        while heap:
            now, r = heapq.heappop(heap)
            if r in w._finished or r in w._blocked:
                continue  # stale entry (rank already advanced or blocked)
            self._step(r)
            if w._failure is not None:
                return
        if len(w._finished) < w.nranks:
            err = DeadlockError(_deadlock_message(w._blocked))
            w._failure = RankFailedError(-1, err)
            w._failure.__cause__ = err
            w._blocked.clear()
            raise err

    def _runnable(self, rank: int) -> None:
        heapq.heappush(self._heap, (self.world.comms[rank].clock.now, rank))

    def _step(self, rank: int) -> None:
        """Run one rank until it blocks, finishes, or stops being the
        lowest-clock runnable rank."""
        w = self.world
        gen = self._gens[rank]
        clock = w.comms[rank].clock
        pending_exc: BaseException | None = None
        while True:
            try:
                if pending_exc is not None:
                    # Deliver API misuse into the program, like the
                    # blocking backend raising from the Communicator call
                    # would; a program that catches it yields its next op.
                    item = gen.throw(pending_exc)
                    pending_exc = None
                else:
                    item = gen.send(self._value[rank])
            except StopIteration as stop:
                w._results[rank] = stop.value
                w._finished.add(rank)
                return
            except BaseException as exc:  # noqa: BLE001 - report rank failure
                if w._failure is None:
                    w._failure = RankFailedError(rank, exc)
                w._finished.add(rank)
                return
            if not isinstance(item, MpiOp):
                exc = TypeError(
                    f"generator programs must yield MpiOp descriptors, got {item!r}"
                )
                if w._failure is None:
                    w._failure = RankFailedError(rank, exc)
                w._finished.add(rank)
                return
            try:
                result = self._execute(rank, item)
            except (ValueError, TypeError) as exc:
                pending_exc = exc
                continue
            if result is _BLOCKED:
                return
            self._value[rank] = result
            # Peek optimization: keep running this rank while it is still
            # the lowest-(clock, rank) runnable rank; otherwise requeue.
            if self._heap and (clock.now, rank) > self._heap[0]:
                heapq.heappush(self._heap, (clock.now, rank))
                return

    # ---- op execution ------------------------------------------------

    def _execute(self, rank: int, item: MpiOp) -> Any:
        comm = item.comm if item.comm is not None else self.world.comms[rank]
        handler = getattr(self, f"_op_{item.name}", None)
        if handler is None:
            raise TypeError(f"unknown MPI op {item.name!r}")
        return handler(rank, comm, *item.args, **item.kwargs)

    # -- non-blocking verbs (direct Communicator calls) --

    def _op_compute(self, rank: int, comm: Communicator, seconds: float) -> None:
        comm.compute(seconds)

    def _op_isend(self, rank: int, comm: Communicator, data: Any, dest: int,
                  tag: int = 0) -> Request:
        gdest = comm._to_global(dest)
        req = comm.isend(data, dest, tag)
        self._wake_receiver(gdest)
        return req

    def _op_send(self, rank: int, comm: Communicator, data: Any, dest: int,
                 tag: int = 0) -> None:
        self._op_isend(rank, comm, data, dest, tag)
        return None

    def _op_irecv(self, rank: int, comm: Communicator, source: int = ANY_SOURCE,
                  tag: int = ANY_TAG, buffer=None) -> Request:
        return comm.irecv(source, tag, buffer)

    def _op_test(self, rank: int, comm: Communicator, request: Request) -> bool:
        return comm.test(request)

    def _op_probe(self, rank: int, comm: Communicator, source: int = ANY_SOURCE,
                  tag: int = ANY_TAG):
        return comm.probe(source, tag)

    # -- potentially blocking point-to-point --

    def _block_recv(self, rank: int, comm: Communicator, request: Request,
                    cont: tuple) -> Any:
        w = self.world
        if w._try_complete_recv(comm, request, post_time=comm.clock.now):
            return None  # caller resolves the value itself
        w._blocked[rank] = _BlockInfo("recv", request, comm.clock.now)
        self._cont[rank] = cont
        return _BLOCKED

    def _op_wait(self, rank: int, comm: Communicator, request: Request) -> Any:
        if request.owner != comm._grank:
            raise ValueError("cannot wait on another rank's request")
        if request.completed:
            return request.data
        if self._block_recv(rank, comm, request, ("wait", request)) is _BLOCKED:
            return _BLOCKED
        return request.data

    def _op_recv(self, rank: int, comm: Communicator, source: int = ANY_SOURCE,
                 tag: int = ANY_TAG, buffer=None) -> Any:
        return self._op_wait(rank, comm, comm.irecv(source, tag, buffer))

    def _op_sendrecv(self, rank: int, comm: Communicator, senddata: Any, dest: int,
                     source: int = ANY_SOURCE, sendtag: int = 0,
                     recvtag: int = ANY_TAG, buffer=None) -> Any:
        self._op_isend(rank, comm, senddata, dest, sendtag)
        return self._op_recv(rank, comm, source, recvtag, buffer)

    def _op_waitall(self, rank: int, comm: Communicator,
                    requests: list[Request]) -> Any:
        return self._advance_waitall(rank, comm, requests, 0)

    def _advance_waitall(self, rank: int, comm: Communicator,
                         requests: list[Request], start: int) -> Any:
        for i in range(start, len(requests)):
            req = requests[i]
            if req.owner != comm._grank:
                raise ValueError("cannot wait on another rank's request")
            if req.completed:
                continue
            if self._block_recv(
                rank, comm, req, ("waitall", comm, requests, i)
            ) is _BLOCKED:
                return _BLOCKED
        return [r.data for r in requests]

    def _op_waitany(self, rank: int, comm: Communicator,
                    requests: list[Request]) -> Any:
        if not requests:
            raise ValueError("waitany needs at least one request")
        for i, r in enumerate(requests):
            if r.completed:
                return i, r.data
        for i, r in enumerate(requests):
            if comm.test(r):
                return i, r.data
        first = requests[0]
        if first.owner != comm._grank:
            raise ValueError("cannot wait on another rank's request")
        if self._block_recv(rank, comm, first, ("waitany", requests)) is _BLOCKED:
            return _BLOCKED
        return 0, first.data

    # -- collectives --

    def _op_barrier(self, rank: int, comm: Communicator) -> Any:
        return self._collective(rank, comm, "barrier", None)

    def _op_bcast(self, rank: int, comm: Communicator, data: Any, root: int = 0) -> Any:
        return self._collective(rank, comm, "bcast", data, root=root)

    def _op_reduce(self, rank: int, comm: Communicator, value: Any,
                   op: str = "sum", root: int = 0) -> Any:
        return self._collective(rank, comm, "reduce", value, root=root,
                                reduce_op=op)

    def _op_allreduce(self, rank: int, comm: Communicator, value: Any,
                      op: str = "sum") -> Any:
        return self._collective(rank, comm, "allreduce", value, reduce_op=op)

    def _op_gather(self, rank: int, comm: Communicator, value: Any,
                   root: int = 0) -> Any:
        return self._collective(rank, comm, "gather", value, root=root)

    def _op_allgather(self, rank: int, comm: Communicator, value: Any) -> Any:
        return self._collective(rank, comm, "allgather", value)

    def _op_scatter(self, rank: int, comm: Communicator, values, root: int = 0) -> Any:
        return self._collective(rank, comm, "scatter", values, root=root)

    def _op_alltoall(self, rank: int, comm: Communicator, values: list) -> Any:
        if len(values) != comm.size:
            raise ValueError("alltoall needs exactly one value per rank")
        return self._collective(rank, comm, "alltoall", values)

    def _op_split(self, rank: int, comm: Communicator, color: int,
                  key: int | None = None) -> Any:
        me = (color, key if key is not None else comm.rank, comm.rank)
        seq = comm._split_seq
        comm._split_seq += 1
        return self._collective(rank, comm, "allgather", me,
                                cont=("split", comm, color, seq))

    def _collective(self, rank: int, comm: Communicator, kind: str, payload: Any,
                    root: int = 0, reduce_op: str = "sum",
                    cont: tuple | None = None) -> Any:
        w = self.world
        info = comm._make_coll_info(kind, payload, root, reduce_op)
        if comm.size == 1:
            w._complete_collective([info], [comm])
            return self._coll_value(info, cont)
        w._blocked[rank] = info
        self._cont[rank] = cont or ("coll",)
        waiting = self._coll.setdefault(info.coll_ctx, {})
        waiting[comm._grank] = (info, comm)
        group = info.coll_group
        if not all(g in waiting for g in group):
            return _BLOCKED
        # Last member arrived: complete the collective for the whole group.
        infos = [waiting[g][0] for g in group]
        kinds = {i.coll_kind for i in infos}
        roots = {i.coll_root for i in infos}
        if len(kinds) > 1 or len(roots) > 1:
            # Leave the group blocked (mirrors the threaded backend, where
            # the mismatch aborts the world) and surface the error.
            raise CollectiveMismatchError(
                f"ranks disagree on collective: kinds={kinds}, roots={roots}"
            )
        comms = [waiting[g][1] for g in group]
        w._complete_collective(infos, comms)
        del self._coll[info.coll_ctx]
        own_value: Any = None
        for g, member_info in zip(group, infos):
            w._blocked.pop(g, None)
            member_cont = self._cont.pop(g, ("coll",))
            value = self._coll_value(member_info, member_cont)
            if g == rank:
                own_value = value
            else:
                self._value[g] = value
                self._runnable(g)
        return own_value

    @staticmethod
    def _coll_value(info: _BlockInfo, cont: tuple | None) -> Any:
        if cont is not None and cont[0] == "split":
            _, comm, color, seq = cont
            return comm._split_result(info.coll_result, color, seq)
        return info.coll_result

    # ---- wakeups -----------------------------------------------------

    def _wake_receiver(self, grank: int) -> None:
        """A message was just mailed to ``grank``: if it is blocked on a
        matching receive, complete it (the arrival-time accounting is
        independent of *when* the completion runs) and requeue it."""
        w = self.world
        info = w._blocked.get(grank)
        if info is None or info.kind != "recv":
            return
        comm = w.comms[grank]
        if not w._try_complete_recv(comm, info.request, info.post_time):
            return
        del w._blocked[grank]
        cont = self._cont.pop(grank)
        value = self._resume_p2p(grank, comm, cont)
        if value is _BLOCKED:
            return  # re-blocked (waitall moved to a later request)
        self._value[grank] = value
        self._runnable(grank)

    def _resume_p2p(self, rank: int, comm: Communicator, cont: tuple) -> Any:
        kind = cont[0]
        if kind == "wait":
            return cont[1].data
        if kind == "waitany":
            return 0, cont[1][0].data
        # waitall: continue completing the remaining requests in order.
        _, wcomm, requests, index = cont
        return self._advance_waitall(rank, wcomm, requests, index + 1)
