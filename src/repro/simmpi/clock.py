"""Message cost models and per-rank virtual time accounting.

Every rank in the simulated MPI world owns a :class:`VirtualClock`: compute
phases advance it explicitly (the DSLs do this with modeled kernel times),
and communication operations advance it through a :class:`CostModel` that
prices a message between two ranks.  The split between "busy" time and
"waiting in MPI" time is what Figure 7 plots.

Three cost models are provided:

* :class:`ZeroCostModel` — free communication; used by correctness tests
  where only data movement matters.
* :class:`MachineCostModel` — prices messages from the platform's
  core-to-core latency classes and link bandwidths, given a rank→core
  placement.  An MPI message costs a software per-message overhead, a
  rendezvous handshake at the core-to-core latency, and a serialization
  term at the link bandwidth of the narrowest hop.
* :class:`ClusterCostModel` — the multi-node extension: same-node pairs
  delegate to an internal :class:`MachineCostModel`, cross-node pairs
  pay the cluster's :class:`~repro.machine.topology.NetworkSpec`
  latency/bandwidth, so intra-socket, inter-socket and inter-node hops
  are priced distinctly (the 1k–10k rank scaling regime).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.spec import PlatformSpec
from ..machine.topology import ClusterSpec, PairKind, classify_pair

__all__ = [
    "VirtualClock",
    "CostModel",
    "ZeroCostModel",
    "MachineCostModel",
    "ClusterCostModel",
    "default_placement",
    "cluster_placement",
]


@dataclass
class VirtualClock:
    """Per-rank simulated time, split into busy and MPI-wait components.

    ``tracer``/``track`` are observability wiring (set by
    :meth:`repro.simmpi.comm.World.run` when a tracer is active): each
    MPI-wait gap the clock absorbs is then recorded as a span — the raw
    material of the paper's Figure 7 per-rank wait accounting.  They are
    excluded from equality so traced and untraced clocks compare equal.
    """

    now: float = 0.0
    compute_time: float = 0.0
    mpi_time: float = 0.0
    tracer: object = field(default=None, compare=False, repr=False)
    track: tuple = field(default=None, compare=False, repr=False)

    def advance_compute(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance time backwards")
        self.now += dt
        self.compute_time += dt

    def advance_mpi(self, until: float) -> None:
        """Move the clock forward to ``until``, charging the gap to MPI."""
        if until > self.now:
            if self.tracer is not None:
                self.tracer.span(
                    "mpi", "wait", self.now, until,
                    track=self.track or ("rank", 0),
                )
            self.mpi_time += until - self.now
            self.now = until

    def charge_mpi(self, dt: float) -> None:
        """Charge ``dt`` of unavoidable MPI software overhead."""
        if dt < 0:
            raise ValueError("negative MPI charge")
        self.now += dt
        self.mpi_time += dt

    @property
    def mpi_fraction(self) -> float:
        return self.mpi_time / self.now if self.now > 0 else 0.0


class CostModel:
    """Interface: price point-to-point messages and collectives."""

    def message_overhead(self, src: int, dst: int) -> float:
        """Software cost charged to both endpoints per message."""
        raise NotImplementedError

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Wire time: handshake latency + serialization."""
        raise NotImplementedError

    def transfer_breakdown(
        self, src: int, dst: int, nbytes: int
    ) -> tuple[float, float]:
        """``(handshake_seconds, wire_seconds)`` of one transfer.

        The handshake term is the zero-byte cost (rendezvous latency +
        software overhead); the wire term is the size-dependent
        serialization remainder, so the two recompose
        :meth:`transfer_time` to float epsilon.  The attribution layer
        (``repro.obs.attribution``) uses this split to separate
        latency-bound from bandwidth-bound MPI seconds.
        """
        handshake = self.transfer_time(src, dst, 0)
        return handshake, self.transfer_time(src, dst, nbytes) - handshake

    def collective_time(self, nranks: int, nbytes: int) -> float:
        """Cost of a reduction/broadcast style collective."""
        raise NotImplementedError


class ZeroCostModel(CostModel):
    """Free communication — pure semantics, for correctness tests."""

    def message_overhead(self, src: int, dst: int) -> float:
        return 0.0

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        return 0.0

    def collective_time(self, nranks: int, nbytes: int) -> float:
        return 0.0


def default_placement(platform: PlatformSpec, nranks: int, hyperthreading: bool = False) -> list[int]:
    """Map ranks to hardware threads the way ``I_MPI_PIN`` compact
    placement does: fill physical cores first, then SMT siblings."""
    limit = platform.total_cores * (2 if hyperthreading else 1)
    if nranks > limit:
        raise ValueError(
            f"{nranks} ranks exceed {limit} available hardware threads on {platform.name}"
        )
    if nranks <= platform.total_cores:
        # Spread across the whole machine so rank i sits on core
        # floor(i * cores / nranks) — matches block placement per NUMA.
        return [i * platform.total_cores // nranks for i in range(nranks)]
    return list(range(nranks))


@dataclass
class MachineCostModel(CostModel):
    """Message costs on a concrete platform with a rank→core placement.

    Parameters
    ----------
    platform:
        Machine model supplying latencies.
    placement:
        ``placement[rank]`` is the hardware thread the rank is pinned to.
    sw_overhead:
        Per-message MPI library cost (matching, progress engine) charged
        to each endpoint.  Intel MPI intra-node is ~0.3 us per message.
    intra_numa_bw / intra_socket_bw / cross_socket_bw:
        Per-pair copy bandwidth *caps* for shared-memory transport.
        Intra-NUMA messages move at cache/memory copy speed; cross-socket
        ones cross UPI/xGMI.
    sharing_ranks:
        Shared-memory message transfer is a memory copy: when many ranks
        exchange simultaneously the achievable per-pair bandwidth is the
        node's memory bandwidth divided among them (send+receive sides).
        The effective rate is ``min(cap, stream_bw / (2 * sharing_ranks))``
        — this is why MPI+OpenMP's few large messages are cheap while
        224-rank pure MPI contends.
    """

    platform: PlatformSpec
    placement: list[int]
    sw_overhead: float = 0.3e-6
    intra_numa_bw: float = 25e9
    intra_socket_bw: float = 20e9
    cross_socket_bw: float = 10e9
    sharing_ranks: int = 1

    def _threads(self, src: int, dst: int) -> tuple[int, int]:
        try:
            return self.placement[src], self.placement[dst]
        except IndexError:
            raise ValueError(f"rank {max(src, dst)} not in placement") from None

    def message_overhead(self, src: int, dst: int) -> float:
        return self.sw_overhead

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        a, b = self._threads(src, dst)
        kind = classify_pair(self.platform, a, b)
        # Handshake: one core-to-core round trip (rendezvous protocol).
        from ..machine.topology import pair_latency

        lat = 2.0 * pair_latency(self.platform, a, b).latency + self.sw_overhead
        if kind in (PairKind.SELF, PairKind.SMT_SIBLING, PairKind.SAME_NUMA):
            bw = self.intra_numa_bw
        elif kind is PairKind.SAME_SOCKET:
            bw = self.intra_socket_bw
        else:
            bw = self.cross_socket_bw
        share = self.platform.stream_bandwidth / (2.0 * max(self.sharing_ranks, 1))
        return lat + nbytes / min(bw, share)

    def collective_time(self, nranks: int, nbytes: int) -> float:
        """Binomial-tree collective: log2(P) stages of the worst hop."""
        if nranks <= 1:
            return 0.0
        stages = max(1, (nranks - 1).bit_length())
        worst = 2.0 * self.platform.latency_cross_socket + self.sw_overhead
        return stages * (worst + nbytes / self.cross_socket_bw)


def cluster_placement(
    cluster: ClusterSpec, nranks: int, hyperthreading: bool = False
) -> list[int]:
    """Block-distribute ranks over the cluster's nodes, compactly within
    each node.

    Ranks are laid out node-major (rank blocks fill node 0, then node 1,
    …) with :func:`default_placement` inside every node — the layout
    ``I_MPI_PIN`` produces under a block rank distribution, and the one
    that keeps Cartesian halo neighbors mostly on-node.  Returned ids are
    the cluster's *global* hardware threads.
    """
    per_node = cluster.platform.total_cores * (2 if hyperthreading else 1)
    if nranks > per_node * cluster.nodes:
        raise ValueError(
            f"{nranks} ranks exceed {per_node * cluster.nodes} available "
            f"hardware threads on {cluster.short_name}"
        )
    base, extra = divmod(nranks, cluster.nodes)
    out: list[int] = []
    for node in range(cluster.nodes):
        count = base + (1 if node < extra else 0)
        if count == 0:
            continue
        offset = node * cluster.platform.total_threads
        out.extend(
            offset + t
            for t in default_placement(cluster.platform, count, hyperthreading)
        )
    return out


class ClusterCostModel(CostModel):
    """Message costs on a multi-node cluster with a rank→thread placement.

    Same-node pairs are priced by an internal :class:`MachineCostModel`
    over the local thread ids (so intra-NUMA / intra-socket /
    cross-socket hops keep their single-node costs); pairs on different
    nodes pay the cluster network instead: a rendezvous round-trip at the
    network latency, the library software overhead plus the network
    stack's per-message cost, and serialization at the NIC bandwidth
    shared among ``nic_sharing`` concurrently-communicating ranks per
    node.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        placement: list[int],
        sw_overhead: float = 0.3e-6,
        nic_sharing: int = 1,
        **node_kwargs,
    ) -> None:
        self.cluster = cluster
        self.placement = placement
        self.sw_overhead = sw_overhead
        self.nic_sharing = nic_sharing
        self._node_model = MachineCostModel(
            cluster.platform,
            [cluster.local_thread(t) for t in placement],
            sw_overhead=sw_overhead,
            **node_kwargs,
        )

    def _threads(self, src: int, dst: int) -> tuple[int, int]:
        try:
            return self.placement[src], self.placement[dst]
        except IndexError:
            raise ValueError(f"rank {max(src, dst)} not in placement") from None

    def is_internode(self, src: int, dst: int) -> bool:
        """True when the two ranks are placed on different nodes."""
        a, b = self._threads(src, dst)
        return self.cluster.node_of_thread(a) != self.cluster.node_of_thread(b)

    def message_overhead(self, src: int, dst: int) -> float:
        if self.is_internode(src, dst):
            return self.sw_overhead + self.cluster.network.message_overhead
        return self._node_model.message_overhead(src, dst)

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        if not self.is_internode(src, dst):
            return self._node_model.transfer_time(src, dst, nbytes)
        net = self.cluster.network
        lat = 2.0 * net.latency + self.sw_overhead + net.message_overhead
        bw = net.bandwidth / max(self.nic_sharing, 1)
        return lat + nbytes / bw

    def collective_time(self, nranks: int, nbytes: int) -> float:
        """Hierarchical collective: an in-node binomial tree over this
        node's share of the ranks, then log2(nodes) network stages."""
        if nranks <= 1:
            return 0.0
        nodes = min(self.cluster.nodes, nranks)
        local = -(-nranks // self.cluster.nodes)  # ceil: ranks per node
        t = self._node_model.collective_time(local, nbytes)
        if nodes > 1:
            net = self.cluster.network
            stages = max(1, (nodes - 1).bit_length())
            t += stages * (
                2.0 * net.latency + self.sw_overhead + net.message_overhead
                + nbytes / net.bandwidth
            )
        return t
