"""Batched array-backed per-rank state for large simulated worlds.

A 4096-rank :class:`~repro.simmpi.comm.World` would otherwise allocate
thousands of :class:`~repro.simmpi.clock.VirtualClock` and
:class:`~repro.simmpi.comm.RankStats` Python objects.  With
``World(backend="events")`` the per-rank clocks and traffic counters
live in one :class:`RankLedger` of numpy arrays instead, and each rank's
communicator holds a :class:`ClockView` / :class:`StatsView` — thin
per-rank windows with exactly the interfaces of ``VirtualClock`` and
``RankStats``.  All arithmetic is IEEE double either way, so the numbers
a view accumulates are bit-identical to the object-per-rank backend;
whole-world reductions (``World.max_time``, ``World.mpi_fraction``)
become single vectorized passes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RankLedger", "ClockView", "StatsView"]

#: (attribute, dtype) columns of the ledger; the float columns mirror
#: ``VirtualClock``, the int columns mirror ``RankStats``.
_FLOAT_COLS = ("now", "compute_time", "mpi_time")
_INT_COLS = (
    "messages_sent", "bytes_sent", "messages_received", "bytes_received",
    "collectives",
)


class RankLedger:
    """Struct-of-arrays store of every rank's clock and traffic counters."""

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        for col in _FLOAT_COLS:
            setattr(self, col, np.zeros(nranks, dtype=np.float64))
        for col in _INT_COLS:
            setattr(self, col, np.zeros(nranks, dtype=np.int64))

    # ---- whole-world reductions (one vectorized pass each) -----------

    def max_now(self) -> float:
        return float(self.now.max())

    def mean_mpi_fraction(self) -> float:
        """Mean of per-rank ``mpi_time / now`` (ranks with ``now == 0``
        count as fraction 0, matching ``VirtualClock.mpi_fraction``)."""
        fracs = np.divide(
            self.mpi_time, self.now,
            out=np.zeros_like(self.mpi_time), where=self.now > 0,
        )
        return float(np.mean(fracs))


class ClockView:
    """Per-rank window into a :class:`RankLedger` with the
    :class:`~repro.simmpi.clock.VirtualClock` interface."""

    __slots__ = ("_ledger", "_rank", "tracer", "track")

    def __init__(self, ledger: RankLedger, rank: int) -> None:
        self._ledger = ledger
        self._rank = rank
        self.tracer = None
        self.track = None

    @property
    def now(self) -> float:
        return self._ledger.now[self._rank]

    @now.setter
    def now(self, value: float) -> None:
        self._ledger.now[self._rank] = value

    @property
    def compute_time(self) -> float:
        return self._ledger.compute_time[self._rank]

    @compute_time.setter
    def compute_time(self, value: float) -> None:
        self._ledger.compute_time[self._rank] = value

    @property
    def mpi_time(self) -> float:
        return self._ledger.mpi_time[self._rank]

    @mpi_time.setter
    def mpi_time(self, value: float) -> None:
        self._ledger.mpi_time[self._rank] = value

    def advance_compute(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance time backwards")
        self._ledger.now[self._rank] += dt
        self._ledger.compute_time[self._rank] += dt

    def advance_mpi(self, until: float) -> None:
        now = self._ledger.now[self._rank]
        if until > now:
            if self.tracer is not None:
                self.tracer.span(
                    "mpi", "wait", now, until,
                    track=self.track or ("rank", 0),
                )
            self._ledger.mpi_time[self._rank] += until - now
            self._ledger.now[self._rank] = until

    def charge_mpi(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("negative MPI charge")
        self._ledger.now[self._rank] += dt
        self._ledger.mpi_time[self._rank] += dt

    @property
    def mpi_fraction(self) -> float:
        now = self._ledger.now[self._rank]
        return self._ledger.mpi_time[self._rank] / now if now > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClockView(rank={self._rank}, now={self.now!r}, "
            f"compute_time={self.compute_time!r}, mpi_time={self.mpi_time!r})"
        )


class StatsView:
    """Per-rank window into a :class:`RankLedger` with the
    :class:`~repro.simmpi.comm.RankStats` interface."""

    __slots__ = ("_ledger", "_rank")

    def __init__(self, ledger: RankLedger, rank: int) -> None:
        self._ledger = ledger
        self._rank = rank


def _stat_property(col: str):
    def get(self: StatsView):
        return int(getattr(self._ledger, col)[self._rank])

    def set(self: StatsView, value) -> None:
        getattr(self._ledger, col)[self._rank] = value

    return property(get, set)


for _col in _INT_COLS:
    setattr(StatsView, _col, _stat_property(_col))
del _col
