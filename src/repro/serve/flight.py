"""Request identity and the flight recorder.

Every request entering the serve pipeline gets an :class:`Inflight`
minted at ingress: a short random ID plus an accumulating map of
per-stage wall timings.  The record rides a :mod:`contextvars`
ContextVar, so the stages recorded deep inside the stack — queue wait
in the admission gate, the batch window, shard execution, store I/O —
land on the request that caused them even when the work happens on a
different thread (the batcher and the shard pool propagate the
ingress context; see ``batch.py`` / ``shard.py``).

Requests merged away by the coalescer keep their own ID but record the
leader's, so a flight record always answers "who actually evaluated
this".

The :class:`FlightRecorder` keeps the last N completed requests in a
ring buffer, served by ``GET /debug/requests[/<id>]`` and dumped to
JSONL on shutdown via ``repro serve --flight-log``.  It also tracks the
slowest request per endpoint — the exemplars the latency histograms in
``/metrics`` link to.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import OrderedDict
from contextvars import ContextVar

__all__ = [
    "Inflight",
    "FlightRecorder",
    "begin",
    "current",
    "add_stage",
    "DEFAULT_CAPACITY",
]

#: Ring-buffer size of the flight recorder (``--flight-records``).
DEFAULT_CAPACITY = 256


class Inflight:
    """One request's identity and stage timings, while in flight."""

    __slots__ = ("id", "endpoint", "method", "start", "stages",
                 "leader_id", "coalesced", "_lock")

    def __init__(self, endpoint: str, method: str):
        self.id = uuid.uuid4().hex[:12]
        self.endpoint = endpoint
        self.method = method
        self.start = time.perf_counter()
        self.stages: dict[str, float] = {}
        #: ID of the request whose evaluation produced this response.
        #: Defaults to our own; the coalescer overwrites it on followers.
        self.leader_id = self.id
        self.coalesced = False
        self._lock = threading.Lock()

    def add_stage(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``stage`` (stages can repeat —
        e.g. store I/O happens once per job of a merged plan)."""
        with self._lock:
            self.stages[stage] = self.stages.get(stage, 0.0) + seconds


_current: ContextVar[Inflight | None] = ContextVar(
    "repro_inflight", default=None
)


def begin(endpoint: str, method: str) -> Inflight:
    """Mint a request record at ingress and install it in the context."""
    inf = Inflight(endpoint, method)
    _current.set(inf)
    return inf


def current() -> Inflight | None:
    """The request record of the current context, or None outside one."""
    return _current.get()


def add_stage(stage: str, seconds: float) -> None:
    """Record a stage timing on the current request, if there is one.

    The no-op path is one ContextVar read — cheap enough to leave
    unconditional at every instrumentation site.
    """
    inf = _current.get()
    if inf is not None:
        inf.add_stage(stage, seconds)


class FlightRecorder:
    """Bounded ring of the last N completed requests."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(1, int(capacity))
        self._ring: OrderedDict[str, dict] = OrderedDict()
        #: slowest completed request per endpoint: endpoint -> record
        self._slowest: dict[str, dict] = {}
        self._lock = threading.Lock()

    def complete(self, inf: Inflight, status: int,
                 duration_s: float) -> dict:
        """Finalize ``inf`` into an immutable record and ring it."""
        with inf._lock:
            stages = {k: round(v, 6) for k, v in sorted(inf.stages.items())}
        record = {
            "id": inf.id,
            "endpoint": inf.endpoint,
            "method": inf.method,
            "status": status,
            "duration_s": round(duration_s, 6),
            "coalesced": inf.coalesced,
            "leader_id": inf.leader_id,
            "stages": stages,
        }
        with self._lock:
            self._ring[inf.id] = record
            while len(self._ring) > self.capacity:
                self._ring.popitem(last=False)
            slow = self._slowest.get(inf.endpoint)
            if slow is None or record["duration_s"] > slow["duration_s"]:
                self._slowest[inf.endpoint] = record
        return record

    def records(self) -> list[dict]:
        """Completed records, newest first."""
        with self._lock:
            return list(reversed(self._ring.values()))

    def get(self, request_id: str) -> dict | None:
        with self._lock:
            return self._ring.get(request_id)

    def exemplars(self) -> dict[str, dict]:
        """Slowest completed request per endpoint (may have aged out of
        the ring; the exemplar keeps its own copy)."""
        with self._lock:
            return dict(self._slowest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def to_jsonl(self) -> str:
        """Ring contents as JSONL, oldest first (the ``--flight-log``
        dump format: one request per line, replayable with jq)."""
        with self._lock:
            lines = [json.dumps(r, sort_keys=True) for r in self._ring.values()]
        return "\n".join(lines) + ("\n" if lines else "")
