"""Request batching: compatible run requests fold into one sweep plan.

A ``POST /run`` needs the whole default configuration sweep of its
(app, platform) pair to pick the best run.  Under concurrent load many
such requests arrive within milliseconds of each other; evaluating each
as its own plan would re-enter the engine once per request.  The
:class:`BatchQueue` instead accumulates requests for a short window
(``window`` seconds, or until ``max_batch`` requests are pending) and
builds *one* merged :class:`~repro.engine.jobs.JobPlan` covering every
distinct pair — duplicates collapse at planning time, the engine fans
the union out once (through the sharded executor), and each request's
future is resolved with its pair's best feasible run.

Requests are "compatible" by construction: every run request wants its
pair's default paper sweep, so any set of them merges into one plan.
Failures stay per-request — a pair with no feasible configuration
rejects only the futures that asked for it.

Context propagation: each request snapshots its submitter's
``contextvars`` context, and the flush runs the merged plan inside the
*first* request's context — so a tracer, session metrics registry or
flight record scoped at ingress survives the hop onto the
``serve-batcher`` thread (which, like every thread, starts with an
empty context).  The evaluation's stage timings land on that leading
request; every batched request additionally records the time it spent
waiting in the window as its ``batch_window`` stage.
"""

from __future__ import annotations

import contextvars
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from ..engine.jobs import JobPlan, JobResult, build_plan
from ..machine.spec import PlatformSpec
from . import flight
from . import metrics as sm

__all__ = ["BatchQueue", "best_of"]


@dataclass
class _Request:
    app: str
    platform: PlatformSpec
    future: Future = field(default_factory=Future)
    #: The submitter's context (tracer / metrics / flight record scoped
    #: at ingress) — entered by the flush that evaluates this request.
    ctx: contextvars.Context = field(default_factory=contextvars.copy_context)
    submitted: float = field(default_factory=time.perf_counter)
    inflight: flight.Inflight | None = field(default_factory=flight.current)

    @property
    def pair(self) -> tuple[str, str]:
        return (self.app, self.platform.short_name)


def best_of(results: list[JobResult], app: str, platform: str):
    """The fastest feasible (config, estimate) of one pair's results;
    raises ``ValueError`` when nothing ran (the ``best_run`` contract)."""
    runs = [
        (r.job.config, r.estimate)
        for r in results
        if r.estimate is not None
        and r.job.app == app
        and r.job.platform.short_name == platform
    ]
    if not runs:
        raise ValueError(f"{app} has no feasible configuration on {platform}")
    return min(runs, key=lambda ce: ce[1].total_time)


class BatchQueue:
    """Accumulate run requests and execute them as merged sweep plans.

    ``run_plan`` is the executor callback (the server passes the
    sharded executor's); it receives one merged plan per flush and
    returns the engine's results.
    """

    def __init__(self, run_plan, *, window: float = 0.005, max_batch: int = 64):
        self._run_plan = run_plan
        self.window = window
        self.max_batch = max_batch
        self._q: "queue.Queue[_Request | None]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._loop, name="serve-batcher", daemon=True
        )
        self._thread.start()

    def submit(self, app: str, platform: PlatformSpec) -> Future:
        """Enqueue one run request; the future resolves to the pair's
        best (config, estimate)."""
        req = _Request(app, platform)
        self._q.put(req)
        return req.future

    def close(self) -> None:
        """Flush pending requests and stop the batching thread."""
        self._q.put(None)
        self._thread.join()

    # ---- the batching loop ----------------------------------------------

    def _gather(self) -> tuple[list[_Request], bool]:
        """Block for the first request, then drain compatible arrivals
        until the window closes or the batch is full."""
        first = self._q.get()
        if first is None:
            return [], True
        batch = [first]
        deadline = time.monotonic() + self.window
        closing = False
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                req = self._q.get(timeout=remaining)
            except queue.Empty:
                break
            if req is None:
                closing = True
                break
            batch.append(req)
        return batch, closing

    def _merged_plan(self, batch: list[_Request]) -> JobPlan:
        """One plan covering every distinct (app, platform) pair's
        default sweep (pair-wise union, *not* an apps × platforms cross
        product — a batch of (a, p) and (b, q) must not drag in (a, q))."""
        merged = JobPlan()
        seen_pairs: set[tuple[str, str]] = set()
        for req in batch:
            if req.pair in seen_pairs:
                continue
            seen_pairs.add(req.pair)
            pair_plan = build_plan([req.app], [req.platform])
            merged.jobs.extend(pair_plan.jobs)
            merged.skipped.extend(pair_plan.skipped)
        return merged

    def _flush(self, batch: list[_Request]) -> None:
        sm.inc("serve_batches_total")
        sm.inc("serve_batched_requests_total", len(batch))
        flushed = time.perf_counter()
        for req in batch:
            if req.inflight is not None:
                req.inflight.add_stage("batch_window", flushed - req.submitted)
        try:
            # Evaluate inside the first request's snapshotted context so
            # ingress-scoped tracer/metrics/flight state reaches the
            # executor (this thread's own context is empty).
            results = batch[0].ctx.run(self._run_plan, self._merged_plan(batch))
        except BaseException as exc:
            for req in batch:
                req.future.set_exception(exc)
            return
        for req in batch:
            try:
                req.future.set_result(
                    best_of(results, req.app, req.platform.short_name)
                )
            except ValueError as exc:
                req.future.set_exception(exc)

    def _loop(self) -> None:
        while True:
            batch, closing = self._gather()
            if batch:
                self._flush(batch)
            if closing or not batch:  # sentinel seen (batch may be empty)
                return
