"""Back-pressure: bounded admission of evaluation-bearing requests.

The server must degrade by *refusing* load it cannot absorb, not by
queueing unboundedly until every client times out.  The
:class:`AdmissionGate` allows ``max_inflight`` requests to evaluate
concurrently and at most ``max_queue`` more to wait for a slot; a
request beyond that is rejected immediately with :class:`Saturated`,
which the HTTP layer maps to ``429 Too Many Requests`` plus a
``Retry-After`` header sized to the current backlog.

Cheap endpoints (``/healthz``, ``/metrics``) bypass the gate — health
checks must keep answering precisely when the service is saturated.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager

from . import flight
from . import metrics as sm

__all__ = ["AdmissionGate", "Saturated"]


class Saturated(Exception):
    """Raised when the gate is full; carries the suggested retry delay."""

    def __init__(self, retry_after: int, depth: int, capacity: int):
        self.retry_after = retry_after
        super().__init__(
            f"server saturated ({depth} requests against a capacity of "
            f"{capacity}); retry in {retry_after} s"
        )


class AdmissionGate:
    """Bounded two-stage gate: ``max_inflight`` running, ``max_queue``
    waiting, everything beyond rejected."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 32,
        est_request_seconds: float = 0.25,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 (got {max_inflight})")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0 (got {max_queue})")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.est_request_seconds = est_request_seconds
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._depth = 0  # admitted requests: running + queued

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def capacity(self) -> int:
        return self.max_inflight + self.max_queue

    def retry_after(self) -> int:
        """Suggested client back-off: the backlog drained at the
        estimated per-request rate, at least one second."""
        return self._retry_after_for(self.depth)

    def _retry_after_for(self, depth: int) -> int:
        # Lock-free variant for callers already holding self._lock.
        queued = max(depth - self.max_inflight, 0)
        return max(
            1,
            math.ceil((queued + 1) * self.est_request_seconds / self.max_inflight),
        )

    @contextmanager
    def admit(self):
        """Hold one admission for the duration of the block, waiting
        for an execution slot; raises :class:`Saturated` when both the
        running and the queued stages are full."""
        with self._lock:
            if self._depth >= self.capacity:
                sm.inc("serve_rejected_total")
                raise Saturated(
                    self._retry_after_for(self._depth), self._depth,
                    self.capacity,
                )
            self._depth += 1
            depth = self._depth
        sm.set_gauge("serve_queue_depth", max(depth - self.max_inflight, 0))
        t_wait = time.perf_counter()
        self._slots.acquire()
        flight.add_stage("queue_wait", time.perf_counter() - t_wait)
        sm.set_gauge("serve_inflight", min(depth, self.max_inflight))
        try:
            yield
        finally:
            self._slots.release()
            with self._lock:
                self._depth -= 1
                depth = self._depth
            sm.set_gauge("serve_queue_depth", max(depth - self.max_inflight, 0))
            sm.set_gauge("serve_inflight", min(depth, self.max_inflight))
