"""Serve-layer metrics: one process-global registry for the service.

Every mechanism in the serve package (admission gate, coalescer, LRU
tier, batcher, request handlers) records into one process-wide
:class:`~repro.obs.metrics.MetricsRegistry` held here, *and* mirrors
each sample into the session registry when one is installed via
:func:`repro.obs.metrics.collecting` — the same double-write pattern
:class:`repro.engine.metrics.EngineMetrics` uses.  ``GET /metrics``
exports this registry (merged with the engine's counters) through the
existing Prometheus text exporter, and ``python -m repro metrics``
folds the families in after a server has run in-process.

Nothing in this module is imported unless the serve package is — the
zero-overhead guarantee for serve-less runs is that this file simply
never loads (``repro.harness.runner.clear_cache`` and the metrics CLI
both look the package up in ``sys.modules`` instead of importing it).

Metric families (all prefixed ``serve_``):

- ``serve_requests_total{endpoint,status}`` — requests by HTTP status;
- ``serve_request_seconds{endpoint}`` — per-request latency histogram;
- ``serve_inflight`` / ``serve_queue_depth`` — admission-gate gauges;
- ``serve_rejected_total`` — back-pressure 429s;
- ``serve_coalesced_total`` — duplicate in-flight requests that shared
  a leader's evaluation;
- ``serve_batches_total`` / ``serve_batched_requests_total`` — batcher
  flushes and the requests they covered;
- ``serve_warm_inline_total`` — fully-cached run requests served
  inline, skipping the batch window;
- ``serve_lru_hits_total`` / ``serve_lru_misses_total`` /
  ``serve_lru_evictions_total`` — warm-tier traffic;
- ``serve_stage_seconds{stage}`` — per-stage latency histogram fed
  from the flight recorder's stage timings (``queue_wait``,
  ``evaluate``, ...), on the finer :data:`STAGE_BUCKETS` grid;
- ``serve_slo_burn_rate{slo}`` / ``serve_slo_status{slo}`` — burn rate
  and 0/1/2 (ok/degraded/failing) per objective, published by the
  telemetry sampler each tick.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry, active_metrics

__all__ = [
    "registry",
    "inc",
    "set_gauge",
    "observe",
    "merge_into",
    "reset",
]

#: Request-latency histogram bounds: service latencies run from
#: sub-millisecond LRU hits to multi-second cold profiling runs.
LATENCY_BUCKETS = (1e-3, 5e-3, 0.025, 0.1, 0.5, 2.0, 10.0, 60.0)

#: Stage-latency bounds (``serve_stage_seconds{stage=...}``): stages
#: like the batch queue wait live well under a millisecond on a warm
#: server, so the grid extends two decades finer than LATENCY_BUCKETS.
STAGE_BUCKETS = (1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 2.0)

_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global serve registry (shared by every server)."""
    return _registry


def inc(name: str, value: float = 1, **labels) -> None:
    _registry.inc(name, value, **labels)
    session = active_metrics()
    if session is not None and session is not _registry:
        session.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    _registry.set(name, value, **labels)
    session = active_metrics()
    if session is not None and session is not _registry:
        session.set(name, value, **labels)


def observe(
    name: str,
    value: float,
    buckets: tuple[float, ...] | None = None,
    **labels,
) -> None:
    bounds = buckets if buckets is not None else LATENCY_BUCKETS
    _registry.observe(name, value, buckets=bounds, **labels)
    session = active_metrics()
    if session is not None and session is not _registry:
        session.observe(name, value, buckets=bounds, **labels)


def merge_into(target: MetricsRegistry) -> int:
    """Fold every serve family into ``target``; returns samples merged.

    This is how ``python -m repro metrics`` surfaces serve activity
    after a server has run in-process without the serve layer ever
    touching the metrics CLI path when unused.
    """
    return target.merge(_registry)


def reset() -> None:
    """Drop all serve samples (test isolation between servers)."""
    _registry.clear()
