"""``repro serve``: the batching, coalescing, sharded estimation service.

A long-running, stdlib-only JSON API over the sweep engine — the
production-posture layer in front of everything the reproduction can
compute.  ``python -m repro serve`` starts it; ``docs/SERVE.md`` is the
endpoint reference.

Module map (each mechanism owns one file):

- :mod:`~repro.serve.server` — HTTP front end, routing, the
  :class:`~repro.serve.server.ServeState` stack, graceful shutdown;
- :mod:`~repro.serve.payloads` — canonical JSON payload builders shared
  with the ``--json`` CLI verbs (byte-equivalence by construction);
- :mod:`~repro.serve.batch` — request batching into merged sweep plans;
- :mod:`~repro.serve.coalesce` — single-flight deduplication of
  identical in-flight requests;
- :mod:`~repro.serve.lru` — bounded in-memory warm tier over the
  content-addressed result store;
- :mod:`~repro.serve.shard` — store-key sharding of plans over a
  worker pool;
- :mod:`~repro.serve.backpressure` — bounded admission, HTTP 429;
- :mod:`~repro.serve.metrics` — serve-layer metric families through
  the existing observability registry.

Nothing imports this package unless serving is requested: the CLI verb
and the ``clear_cache`` / ``repro metrics`` integration points look it
up lazily, preserving the repository's zero-overhead guarantee for
serve-less runs (all existing outputs stay bit-identical when the
server has never started).
"""

from __future__ import annotations

from .backpressure import AdmissionGate, Saturated
from .batch import BatchQueue
from .coalesce import Coalescer
from .lru import LRUStore
from .payloads import RequestError, render_json
from .server import ReproServer, ServeConfig, ServeState, create_server
from .shard import ShardedExecutor, shard_plan

__all__ = [
    "AdmissionGate",
    "Saturated",
    "BatchQueue",
    "Coalescer",
    "LRUStore",
    "RequestError",
    "render_json",
    "ReproServer",
    "ServeConfig",
    "ServeState",
    "create_server",
    "ShardedExecutor",
    "shard_plan",
]
