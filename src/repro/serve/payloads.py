"""Canonical JSON payloads shared by the CLI and the HTTP service.

The golden-equivalence discipline (PR 5) demands that a number has one
rendering: ``POST /run`` must return byte-for-byte what ``python -m
repro run APP --platform P --json`` prints, and ``GET /fidelity`` what
``fidelity --json`` prints.  That equivalence is engineered here rather
than tested into existence: both surfaces call the same payload
builders and the same :func:`render_json` (``indent=2, sort_keys=True``
plus a trailing newline — the shape every ``--json`` verb already
emits), so they cannot drift apart.

Name resolution mirrors the CLI exactly through
:func:`repro.cli.common.match_app` / ``match_platform``; a failed match
raises :class:`RequestError`, which the CLI reports on stderr with exit
status 2 and the server maps to HTTP 400 — one error contract, two
transports.
"""

from __future__ import annotations

import json

from ..cli.common import match_app, match_platform
from ..engine import build_plan, default_engine
from ..engine.store import estimate_to_dict
from ..machine.config import RunConfig
from ..machine.spec import PlatformSpec
from ..perfmodel.roofline import AppEstimate

__all__ = [
    "RequestError",
    "render_json",
    "resolve_app",
    "resolve_platform",
    "resolve_what_if",
    "resolve_figures",
    "run_payload",
    "best_run_payload",
    "sweep_payload",
    "explain_payload",
    "fidelity_payload",
]


class RequestError(ValueError):
    """A request that cannot be served: unknown name, bad knob, bad
    figure — the serve-side twin of the CLI's exit-status-2 errors."""


def render_json(payload: dict) -> str:
    """The one JSON rendering every surface emits."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# request-field resolution (the CLI matching contract, raising form)


def resolve_app(name) -> str:
    if not isinstance(name, str) or not name:
        raise RequestError(f"'app' must be a non-empty string (got {name!r})")
    resolved, error = match_app(name)
    if error is not None:
        raise RequestError(error)
    return resolved


def resolve_platform(short_name) -> PlatformSpec:
    if not isinstance(short_name, str) or not short_name:
        raise RequestError(
            f"'platform' must be a non-empty string (got {short_name!r})"
        )
    resolved, error = match_platform(short_name)
    if error is not None:
        raise RequestError(error)
    return resolved


def resolve_what_if(knobs) -> dict[str, float]:
    """Validate a what-if mapping (the ``KNOB=FACTOR`` contract of
    ``repro explain --what-if``)."""
    from ..obs.attribution import WHAT_IF_KNOBS

    if not isinstance(knobs, dict):
        raise RequestError(f"'what_if' must be an object (got {knobs!r})")
    out: dict[str, float] = {}
    for key, val in knobs.items():
        if key not in WHAT_IF_KNOBS:
            raise RequestError(f"unknown what-if knob {key!r} "
                               f"(choose from: {', '.join(WHAT_IF_KNOBS)})")
        try:
            factor = float(val)
        except (TypeError, ValueError):
            raise RequestError(f"bad what-if factor {val!r} for {key!r} "
                               "(a float, or 'inf' to zero the leaves)")
        if not factor > 0:
            raise RequestError(
                f"what-if factor for {key!r} must be > 0 (got {val})"
            )
        out[key] = factor
    return out


def resolve_figures(figures) -> list[str]:
    from ..obs.fidelity import FIGURE_ORDER

    if figures is None:
        return []
    if isinstance(figures, str):
        figures = [f for f in figures.split(",") if f]
    if not isinstance(figures, list):
        raise RequestError(f"'figures' must be a list (got {figures!r})")
    for fig in figures:
        if fig not in FIGURE_ORDER:
            raise RequestError(f"unknown figure {fig!r} "
                               f"(choose from: {', '.join(FIGURE_ORDER)})")
    return list(figures)


# ---------------------------------------------------------------------------
# payload builders


def best_run_payload(
    name: str, platform: PlatformSpec, cfg: RunConfig, est: AppEstimate
) -> dict:
    """The ``run`` payload for an already-evaluated best run (the serve
    path gets (cfg, est) from the batcher; the CLI from ``best_run``)."""
    return {
        "app": name,
        "platform": platform.short_name,
        "config": cfg.label(),
        "total_time_s": est.total_time,
        "compute_time_s": est.compute_time,
        "mpi_time_s": est.mpi_time,
        "mpi_fraction": est.mpi_fraction,
        "effective_bandwidth_gbs": est.effective_bandwidth / 1e9,
        "estimate": estimate_to_dict(est),
    }


def run_payload(name: str, platform: PlatformSpec) -> dict:
    """Best-run payload of one (app, platform) pair, evaluated through
    the process-default engine — ``repro run --json``'s body."""
    from ..harness import best_run, default_sweep_configs

    cfg, est = best_run(name, platform, default_sweep_configs(name, platform))
    return best_run_payload(name, platform, cfg, est)


def sweep_payload(
    apps: list[str], platforms: list[PlatformSpec], run_plan=None
) -> dict:
    """Full-sweep payload over apps × platforms — ``repro sweep
    --json``'s body.  ``run_plan`` lets the server substitute the
    sharded executor; rows are sorted, so the executor cannot change
    the bytes."""
    engine = default_engine()
    plan = build_plan(apps, platforms)
    results = (run_plan or engine.run_plan)(plan)
    rows = []
    for r in sorted(
        results,
        key=lambda r: (r.job.app, r.job.platform.short_name,
                       r.job.config.label()),
    ):
        row = {
            "app": r.job.app,
            "platform": r.job.platform.short_name,
            "config": r.job.config.label(),
            "status": r.status,
        }
        if r.estimate is not None:
            row["total_time_s"] = r.estimate.total_time
            row["effective_bandwidth_gbs"] = r.estimate.effective_bandwidth / 1e9
            row["mpi_fraction"] = r.estimate.mpi_fraction
        if r.reason:
            row["reason"] = r.reason
        rows.append(row)
    return {
        "apps": list(apps),
        "platforms": [p.short_name for p in platforms],
        "jobs": len(plan.jobs),
        "planned_infeasible": len(plan.skipped),
        # Which evaluation path the plan ran through ("vectorized" or
        # "scalar") — disambiguates benchmarks and bug reports.  The
        # sharded executor and run_plan both record it on the engine.
        "evaluator": engine.last_evaluator,
        "results": rows,
    }


def explain_payload(
    name: str,
    platform: PlatformSpec,
    vs: PlatformSpec | None = None,
    what_if: dict[str, float] | None = None,
) -> dict:
    """Attribution payload — ``repro explain --json``'s body."""
    from ..harness import best_attribution
    from ..obs.diff import diff_trees, project

    _cfg, _est, tree = best_attribution(name, platform)
    payload = {"tree": tree.as_dict()}
    if vs is not None:
        _cfg_b, _est_b, tree_b = best_attribution(name, vs)
        payload["diff"] = diff_trees(tree, tree_b).as_dict()
    if what_if:
        projection = project(tree, what_if)
        payload["what_if"] = {
            k: v for k, v in projection.items() if k != "tree"
        }
        payload["what_if"]["tree"] = projection["tree"].as_dict()
    return payload


def fidelity_payload(figures: list[str] | None = None) -> dict:
    """Scorecard payload — ``repro fidelity --json``'s body."""
    from ..obs.fidelity import scorecard

    return scorecard(figures or None).as_dict()
