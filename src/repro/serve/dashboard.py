"""The live serve dashboard: one self-contained HTML page.

``GET /dashboard`` renders the telemetry sampler's rings as a grid of
SVG sparklines (one card per metric family), histogram heat-strips,
SLO status lights and the flight-recorder slowest-requests table —
with the same discipline as :mod:`repro.obs.htmlreport`: **inline CSS,
inline JS, zero external references**.  The page embeds its initial
``/telemetry`` payload as a JSON island and re-fetches the same
endpoint (a relative path — no scheme, no host) on the sampling
interval, so it keeps rendering live data for as long as it is open
and still renders the last state if the server goes away.

Palette: the validated reference data-viz palette — surfaces
``#fcfcfb``/``#1a1a19``, series blue ``#2a78d6``/``#3987e5``, the
sequential blue ramp for heat-strips, and the fixed status colors
(good/warning/critical) which always ship with an icon glyph and a
text label, never color alone.  Light and dark are both first-class
via ``prefers-color-scheme``.
"""

from __future__ import annotations

import json

__all__ = ["render_dashboard"]

#: Sequential blue ramp (light→dark) for histogram heat-strips.
_HEAT_RAMP = (
    "#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5",
    "#2a78d6", "#1c5cab", "#104281", "#0d366b",
)

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --border: rgba(11, 11, 11, 0.10);
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 1.5rem;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 1.2rem; margin: 0 0 0.25rem; }
h2 { font-size: 0.95rem; margin: 1.5rem 0 0.5rem; color: var(--text-secondary); }
.sub { color: var(--text-muted); font-size: 0.8rem; margin-bottom: 1rem; }
.slo-row { display: flex; flex-wrap: wrap; gap: 0.6rem; }
.slo {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 0.55rem 0.8rem; min-width: 14rem;
}
.slo .light { font-weight: 600; }
.slo .detail { color: var(--text-secondary); font-size: 0.78rem; }
.st-ok { color: var(--status-good); }
.st-degraded { color: var(--status-warning); }
.st-failing { color: var(--status-critical); }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(19rem, 1fr)); gap: 0.6rem; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 0.55rem 0.8rem;
}
.card .name { font-size: 0.78rem; color: var(--text-secondary); word-break: break-all; }
.card .val { font-size: 1.05rem; font-weight: 600; }
.card .quant { font-size: 0.75rem; color: var(--text-muted); font-variant-numeric: tabular-nums; }
.spark { display: block; width: 100%; height: 42px; margin-top: 0.25rem; }
.spark polyline { fill: none; stroke: var(--series-1); stroke-width: 2; }
.spark line { stroke: var(--baseline); stroke-width: 1; }
.heat { display: flex; gap: 2px; margin-top: 0.3rem; height: 10px; }
.heat span { flex: 1; border-radius: 2px; background: var(--grid); }
.heat-labels { display: flex; justify-content: space-between; color: var(--text-muted); font-size: 0.68rem; }
table { border-collapse: collapse; width: 100%; background: var(--surface-1);
        border: 1px solid var(--border); border-radius: 6px; }
th, td { text-align: left; padding: 0.35rem 0.7rem; font-size: 0.8rem;
         border-bottom: 1px solid var(--grid); }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
th { color: var(--text-secondary); font-weight: 600; }
tr:last-child td { border-bottom: none; }
#stale { display: none; color: var(--status-critical); font-size: 0.8rem; }
"""

_JS = """
const STATUS = {
  ok:       {glyph: "\\u25CF", cls: "st-ok",       label: "ok"},
  degraded: {glyph: "\\u25B2", cls: "st-degraded", label: "degraded"},
  failing:  {glyph: "\\u2716", cls: "st-failing",  label: "failing"},
};
const RAMP = __RAMP__;

function esc(s) {
  return String(s).replace(/[&<>"]/g,
    c => ({"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}[c]));
}
function fmt(v) {
  if (v === null || v === undefined || Number.isNaN(v)) return "-";
  if (v === 0) return "0";
  const a = Math.abs(v);
  if (a >= 1000) return v.toFixed(0);
  if (a >= 1) return v.toFixed(2);
  return v.toPrecision(3);
}
function labelText(labels) {
  const parts = Object.entries(labels || {}).map(([k, v]) => k + "=" + v);
  return parts.length ? "{" + parts.join(",") + "}" : "";
}
function sparkline(points) {
  if (!points || points.length < 2) {
    return '<svg class="spark" viewBox="0 0 100 30" preserveAspectRatio="none">' +
           '<line x1="0" y1="29" x2="100" y2="29"></line></svg>';
  }
  const ys = points.map(p => p[1]);
  const xs = points.map(p => p[0]);
  const ymax = Math.max(...ys, 1e-12), x0 = xs[0];
  const span = Math.max(xs[xs.length - 1] - x0, 1e-9);
  const coords = points.map(p => {
    const x = ((p[0] - x0) / span) * 100;
    const y = 28 - (p[1] / ymax) * 26;
    return x.toFixed(2) + "," + y.toFixed(2);
  }).join(" ");
  return '<svg class="spark" viewBox="0 0 100 30" preserveAspectRatio="none">' +
         '<line x1="0" y1="29" x2="100" y2="29"></line>' +
         '<polyline points="' + coords + '"><title>' +
         fmt(ys[ys.length - 1]) + ' latest, ' + fmt(ymax) + ' peak</title></polyline></svg>';
}
function heatStrip(buckets) {
  if (!buckets || !buckets.recent || !buckets.recent.length) return "";
  const max = Math.max(...buckets.recent, 1);
  const cells = buckets.recent.map((n, i) => {
    const bound = i < buckets.bounds.length ? "\\u2264" + fmt(buckets.bounds[i]) : "+Inf";
    if (n <= 0) return '<span title="' + bound + ': 0"></span>';
    const idx = Math.min(RAMP.length - 1,
      Math.floor((Math.log1p(n) / Math.log1p(max)) * (RAMP.length - 1)));
    return '<span style="background:' + RAMP[idx] + '" title="' +
           bound + ": " + n + '"></span>';
  }).join("");
  const lo = buckets.bounds.length ? fmt(buckets.bounds[0]) : "";
  const hi = buckets.bounds.length ? fmt(buckets.bounds[buckets.bounds.length - 1]) : "";
  return '<div class="heat">' + cells + '</div>' +
         '<div class="heat-labels"><span>\\u2264' + lo + 's</span><span>&gt;' + hi + 's</span></div>';
}
function sloCard(obj) {
  const st = STATUS[obj.status] || STATUS.ok;
  return '<div class="slo"><div class="light ' + st.cls + '">' + st.glyph +
         " " + st.label + " \\u00B7 " + esc(obj.name) + "</div>" +
         '<div class="detail">' + esc(obj.description || obj.family) +
         "</div>" + '<div class="detail">burn ' + fmt(obj.burn_short) +
         " (short) / " + fmt(obj.burn_long) + " (long)</div></div>";
}
function familyCard(name, fam, row) {
  const isHist = fam.kind === "histogram";
  const unit = fam.kind === "counter" ? "/s" : isHist ? " obs/s" : "";
  const last = row.points.length ? row.points[row.points.length - 1][1] : 0;
  let quant = "";
  if (isHist && row.quantiles) {
    quant = '<div class="quant">p50 ' + fmt(row.quantiles.p50) +
            " \\u00B7 p95 " + fmt(row.quantiles.p95) +
            " \\u00B7 p99 " + fmt(row.quantiles.p99) + "</div>";
  }
  return '<div class="card"><div class="name">' + esc(name) +
         esc(labelText(row.labels)) + '</div><div class="val">' +
         fmt(fam.kind === "gauge" ? row.last : last) + unit + "</div>" +
         sparkline(row.points) + (isHist ? heatStrip(row.buckets) : "") +
         quant + "</div>";
}
function render(data) {
  const slo = data.slo || {status: "ok", objectives: []};
  const st = STATUS[slo.status] || STATUS.ok;
  document.getElementById("overall").innerHTML =
    '<span class="' + st.cls + '">' + st.glyph + " " + st.label + "</span>";
  document.getElementById("meta").textContent =
    (data.samples || 0) + " samples \\u00B7 every " + data.interval_s +
    "s \\u00B7 ring " + data.capacity;
  document.getElementById("slos").innerHTML =
    (slo.objectives || []).map(sloCard).join("") ||
    '<div class="slo"><span class="light st-ok">\\u25CF ok</span>' +
    '<div class="detail">no objectives evaluated yet</div></div>';
  const fams = data.families || {};
  const cards = [];
  for (const name of Object.keys(fams).sort()) {
    for (const row of fams[name].series) {
      cards.push(familyCard(name, fams[name], row));
    }
  }
  document.getElementById("cards").innerHTML = cards.join("");
  const rows = (data.slowest || []).map(r =>
    "<tr><td>" + esc(r.endpoint) + "</td><td>" + esc(r.id) + "</td>" +
    '<td class="num">' + fmt(r.duration_s) + "</td><td>" + r.status +
    "</td></tr>").join("");
  document.getElementById("slowest").innerHTML = rows ||
    '<tr><td colspan="4">no requests recorded yet</td></tr>';
}
const initial = JSON.parse(document.getElementById("data").textContent);
render(initial);
const every = Math.max(1, initial.interval_s || 1) * 1000;
setInterval(() => {
  fetch("/telemetry").then(r => r.json()).then(d => {
    document.getElementById("stale").style.display = "none";
    render(d);
  }).catch(() => {
    document.getElementById("stale").style.display = "block";
  });
}, every);
"""


def render_dashboard(payload: dict) -> str:
    """The dashboard page with ``payload`` embedded as its initial data.

    ``payload`` is the ``GET /telemetry`` body (sampler rings + SLO doc
    + slowest requests).  The JSON island escapes ``</`` so a label
    value can never terminate the script block early.
    """
    data = json.dumps(payload).replace("</", "<\\/")
    js = _JS.replace("__RAMP__", json.dumps(list(_HEAT_RAMP)))
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro serve dashboard</title>
<style>{_CSS}</style>
</head>
<body>
<h1>repro serve <span id="overall"></span></h1>
<div class="sub" id="meta"></div>
<div id="stale">✖ refresh failed — showing the last data</div>
<h2>Service objectives</h2>
<div class="slo-row" id="slos"></div>
<h2>Metric families</h2>
<div class="grid" id="cards"></div>
<h2>Slowest requests (per endpoint)</h2>
<table><thead><tr><th>endpoint</th><th>request id</th>
<th>duration s</th><th>status</th></tr></thead>
<tbody id="slowest"></tbody></table>
<script type="application/json" id="data">{data}</script>
<script>{js}</script>
</body>
</html>
"""
