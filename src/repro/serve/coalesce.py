"""Coalescing of duplicate in-flight work (single-flight execution).

Two clients asking for the same point — the same ``AppSpec.fingerprint``
× platform × config × model version, i.e. the same store key — must
share one evaluation, not race to compute it twice.  :class:`Coalescer`
implements the classic single-flight pattern: the first request for a
key becomes the *leader* and runs the computation; requests arriving
while the leader is in flight become *followers* that block on the
leader's event and receive the same result (or the same exception).

The store deduplicates *completed* work; the coalescer deduplicates
*in-flight* work — the window between a cold request arriving and its
result landing in the store, which under concurrent load is exactly
when duplicates pile up.

Request identity: the leader stamps its request ID on the flight, and
every follower copies it into its own flight record (``coalesced=True``,
``leader_id=<leader>``) — so ``/debug/requests`` shows each request's
own ID *and* the ID of the request whose evaluation answered it.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, TypeVar

from . import flight as flightlog
from . import metrics as sm

__all__ = ["Coalescer"]

T = TypeVar("T")


class _Flight:
    __slots__ = ("done", "result", "error", "followers", "leader_id")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.followers = 0
        self.leader_id: str | None = None


class Coalescer:
    """Single-flight executor: one computation per key at a time."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Flight] = {}

    def do(self, key: Hashable, compute: Callable[[], T]) -> tuple[T, bool]:
        """Run ``compute`` once per in-flight ``key``.

        Returns ``(result, coalesced)``: the leader computes and gets
        ``coalesced=False``; every follower that arrived while the
        leader was running gets the leader's result and ``True``.  A
        leader's exception propagates to the leader *and* all its
        followers.
        """
        own = flightlog.current()
        with self._lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _Flight()
                if own is not None:
                    flight.leader_id = own.id
                leader = True
            else:
                flight.followers += 1
                leader = False

        if not leader:
            flight.done.wait()
            sm.inc("serve_coalesced_total")
            if own is not None:
                own.coalesced = True
                if flight.leader_id is not None:
                    own.leader_id = flight.leader_id
            if flight.error is not None:
                raise flight.error
            return flight.result, True

        try:
            flight.result = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                del self._inflight[key]
            flight.done.set()
        return flight.result, False

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)
