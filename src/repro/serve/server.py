"""The HTTP estimation service: stdlib ``http.server`` over the engine.

``repro serve`` stands this server up as a long-running process; tests
and the bench harness embed it in-process on an ephemeral port.  One
:class:`ServeState` owns the whole serving stack:

- a :class:`~repro.serve.lru.LRUStore` warm tier over the persistent
  content-addressed store, installed as the process-default engine's
  store (so the CLI verbs, the figure harnesses and the service all
  share one cache);
- a :class:`~repro.serve.shard.ShardedExecutor` fanning sweep plans
  over a worker pool by store key;
- a :class:`~repro.serve.batch.BatchQueue` folding concurrent run
  requests into merged plans;
- a :class:`~repro.serve.coalesce.Coalescer` deduplicating identical
  in-flight requests;
- an :class:`~repro.serve.backpressure.AdmissionGate` bounding
  concurrent evaluation work (HTTP 429 + ``Retry-After`` beyond it).

Endpoints (see ``docs/SERVE.md``):

==========================  ===============================================
``GET /healthz``            liveness + SLO health (``ok|degraded|failing``)
``GET /metrics``            Prometheus text: serve + engine metric families
``GET /telemetry``          sampler rings as JSON (the dashboard's feed)
``GET /dashboard``          self-contained live HTML dashboard
``GET /fidelity``           scorecard JSON (``?figures=...`` to restrict)
``POST /run``               best-run estimate of ``{"app", "platform"}``
``POST /sweep``             sweep of ``{"apps": [...], "platforms": [...]}``
``POST /explain``           attribution ``{"app", "platform", "vs", ...}``
``GET /debug/requests``     flight recorder: the last N requests
``GET /debug/requests/<id>``  one request's stage timings (404 if aged out)
==========================  ===============================================

A :class:`~repro.obs.telemetry.TelemetrySampler` snapshots the merged
registry every ``--sample-interval`` seconds (default 1 s) into bounded
time-series rings, evaluates the default SLOs (:func:`default_slos`),
and optionally appends each sample to ``--telemetry-log``.  ``/healthz``
keeps its HTTP-200 liveness contract in every state — orchestrators
reading the status *body* get the three-state SLO verdict.

Every response carries an ``X-Request-Id`` header; the same ID keys the
flight recorder, the JSONL access log (``--access-log``) and, for
coalesced requests, the follower records pointing at their leader.

``/run``, ``/fidelity``, ``/sweep`` and ``/explain`` bodies are
byte-equivalent to the corresponding ``--json`` CLI outputs — both
surfaces render through :mod:`repro.serve.payloads`.  Malformed JSON
and unresolvable names map to HTTP 400 carrying the same message the
CLI would print before exiting with status 2.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..apps import APP_ORDER
from ..engine import configure_engine, reset_engine
from ..engine.core import default_cache_dir
from ..engine.jobs import build_plan
from ..engine.store import ResultStore, model_version
from ..machine import ALL_PLATFORMS
from ..obs.metrics import (
    MetricsRegistry,
    collecting,
    prometheus_text,
    quantile_summary,
)
from ..obs.telemetry import SLO, TelemetrySampler
from ..obs.tracer import active_tracer, tracing
from . import flight
from . import metrics as sm
from . import payloads
from .dashboard import render_dashboard
from .backpressure import AdmissionGate, Saturated
from .batch import BatchQueue, best_of
from .coalesce import Coalescer
from .lru import DEFAULT_CAPACITY, LRUStore
from .shard import ShardedExecutor

__all__ = [
    "ServeConfig",
    "ServeState",
    "ReproServer",
    "create_server",
    "default_slos",
]


def default_slos(config: "ServeConfig") -> tuple[SLO, ...]:
    """The server's built-in objectives (``docs/SERVE.md`` documents
    the schema):

    - ``run-latency-p99``: 99% of warm ``/run`` requests under 250 ms;
    - ``error-rate``: fewer than 1% of responses are 5xx;
    - ``queue-wait-p95``: 95% of batch-queue waits within the batch
      window (a longer wait means the queue, not the window, paces
      admission).
    """
    return (
        SLO(
            name="run-latency-p99",
            family="serve_request_seconds",
            labels=(("endpoint", "/run"),),
            threshold_s=0.25,
            target=0.99,
            description="99% of /run requests complete within 250 ms",
        ),
        SLO(
            name="error-rate",
            family="serve_requests_total",
            kind="errors",
            target=0.99,
            description="fewer than 1% of responses are 5xx",
        ),
        SLO(
            name="queue-wait-p95",
            family="serve_stage_seconds",
            labels=(("stage", "queue_wait"),),
            threshold_s=max(config.batch_window, 1e-4),
            target=0.95,
            description="95% of batch-queue waits within the batch window",
        ),
    )


@dataclass
class ServeConfig:
    """Tunables of one server instance (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8000
    workers: int = 4
    lru_capacity: int = DEFAULT_CAPACITY
    max_inflight: int = 8
    max_queue: int = 32
    batch_window: float = 0.005
    max_batch: int = 64
    cache_dir: str | None = None  # None: the engine's default resolution
    use_cache: bool = True
    vectorize: bool = True  # False: per-job scalar evaluation (--no-vec)
    verbose: bool = False
    #: Flight-recorder ring size (``--flight-records``).
    flight_records: int = flight.DEFAULT_CAPACITY
    #: Dump the flight-recorder ring to this JSONL file on shutdown.
    flight_log: str | None = None
    #: Append one JSONL line per completed request to this file.
    access_log: str | None = None
    #: Telemetry sampling interval in seconds (``--sample-interval``);
    #: <= 0 disables the sampler thread (ticks can still be driven
    #: manually — the service tests do).
    sample_interval: float = 1.0
    #: Ring capacity per time series (``--telemetry-ring``).
    telemetry_ring: int = 600
    #: Append one JSONL record per telemetry sample to this file.
    telemetry_log: str | None = None
    # Embedded use only (tests, the bench harness): a Tracer / session
    # MetricsRegistry installed around every request dispatch.  Handler
    # threads start with empty contexts, so observability scoped at the
    # embedding site would otherwise never reach the pipeline.
    tracer: object | None = None
    session_metrics: object | None = None


class ServeState:
    """The serving stack behind the HTTP handler."""

    def __init__(self, config: ServeConfig):
        self.config = config
        directory = (
            config.cache_dir if config.cache_dir is not None
            else default_cache_dir()
        )
        self.store = LRUStore(
            ResultStore(directory if config.use_cache else None),
            capacity=config.lru_capacity,
        )
        # Installed as the process default so the harness wrappers the
        # payload builders use (best_run, best_attribution, scorecard)
        # all evaluate through the serve cache and worker settings.
        self.engine = configure_engine(
            store=self.store, workers=1, use_cache=config.use_cache,
            vectorize=config.vectorize,
        )
        self.executor = ShardedExecutor(self.engine, shards=config.workers)
        self.batcher = BatchQueue(
            self.executor.run_plan,
            window=config.batch_window,
            max_batch=config.max_batch,
        )
        self.coalescer = Coalescer()
        self.gate = AdmissionGate(
            max_inflight=config.max_inflight, max_queue=config.max_queue
        )
        self.recorder = flight.FlightRecorder(config.flight_records)
        self._access_log = (
            open(config.access_log, "a", encoding="utf-8")
            if config.access_log else None
        )
        self._access_lock = threading.Lock()
        # The sampler is always constructed (tests drive tick() by
        # hand with sample_interval=0); the thread only starts when the
        # interval is positive.
        self.sampler = TelemetrySampler(
            self.merged_registry,
            interval=config.sample_interval,
            capacity=config.telemetry_ring,
            log_path=config.telemetry_log,
            slos=default_slos(config),
            gauge_sink=sm.set_gauge,
        )
        self.sampler.start()
        self.started = time.time()
        self._closed = False
        self._fingerprints: dict[str, str] = {}

    def _fingerprint(self, name: str) -> str:
        """Memoized spec fingerprint (recomputing it hashes the whole
        kernel list — ~20 ms — which would dominate warm requests)."""
        fp = self._fingerprints.get(name)
        if fp is None:
            fp = self._fingerprints[name] = self.engine.app_spec(name).fingerprint()
        return fp

    def run_key(self, name: str, platform) -> tuple:
        """Coalescing identity of a run request: spec fingerprint ×
        platform × model version (two clients asking for the same point
        under the same model share one evaluation)."""
        return ("run", self._fingerprint(name), platform.short_name,
                model_version())

    def best_run(self, name: str, platform) -> tuple:
        """Coalesced best-run evaluation of one pair.

        Fully-cached pairs run inline (every job of the pair's sweep is
        already in the store, so the plan is pure cache hits); anything
        needing real evaluation goes through the batch queue, where
        concurrent cold requests merge into one plan.  Batching exists
        to amortize expensive evaluation — warm requests skip its
        window entirely.
        """
        def compute():
            plan = build_plan([name], [platform])
            if self.engine.use_cache and plan.jobs and all(
                self.engine.result_address(j.app, j.platform, j.config)
                in self.store
                for j in plan.jobs
            ):
                sm.inc("serve_warm_inline_total")
                return best_of(self.engine.run_plan(plan), name,
                               platform.short_name)
            return self.batcher.submit(name, platform).result()

        (cfg, est), _coalesced = self.coalescer.do(
            self.run_key(name, platform), compute
        )
        return cfg, est

    def log_access(self, record: dict) -> None:
        """One JSONL line per completed request (``--access-log``)."""
        if self._access_log is None:
            return
        line = json.dumps({"ts": round(time.time(), 6), **record},
                          sort_keys=True)
        with self._access_lock:
            self._access_log.write(line + "\n")
            self._access_log.flush()

    def merged_registry(self) -> MetricsRegistry:
        """Serve families + the engine's counters, one registry.

        The flight recorder's slowest request per endpoint rides along
        as ``serve_slowest_request_seconds`` gauges whose ``request_id``
        label links the latency histograms to ``/debug/requests/<id>``.
        """
        merged = MetricsRegistry()
        merged.merge(sm.registry())
        merged.merge(self.engine.metrics.registry)
        for endpoint, rec in sorted(self.recorder.exemplars().items()):
            merged.set(
                "serve_slowest_request_seconds", rec["duration_s"],
                endpoint=endpoint, request_id=rec["id"],
            )
        return merged

    def health(self) -> dict:
        """Liveness plus SLO health.

        ``status`` is the worst objective status (``ok`` when the SLO
        engine has nothing to say yet) — the HTTP code stays 200 in
        every state so orchestrator liveness probes keep passing while
        humans and alerting read the body.
        """
        inner = self.store.inner
        slo = self.sampler.slo_status()
        return {
            "status": slo.get("status", "ok"),
            "slo": slo,
            "version": __version__,
            "uptime_s": round(time.time() - self.started, 3),
            "model_version": model_version(),
            "store_records": len(self.store),
            "store_corrupt_records": inner.corrupt_lines,
            "lru_entries": self.store.tier_len,
            "inflight": self.gate.depth,
            "workers": self.config.workers,
        }

    def close(self) -> None:
        """Stop the batcher, dump the flight log, release the
        process-default engine."""
        if self._closed:
            return
        self._closed = True
        # Final flush sample + log close before the engine goes away.
        self.sampler.stop()
        self.batcher.close()
        if self.config.flight_log:
            Path(self.config.flight_log).write_text(
                self.recorder.to_jsonl(), encoding="utf-8"
            )
        if self._access_log is not None:
            self._access_log.close()
            self._access_log = None
        reset_engine()


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> ServeState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # quiet by default
        if self.state.config.verbose:
            super().log_message(fmt, *args)

    # ---- response plumbing ----------------------------------------------

    def _send(self, code: int, body: str,
              content_type: str = "application/json",
              extra_headers: dict | None = None) -> int:
        data = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        inf = flight.current()
        if inf is not None:
            self.send_header("X-Request-Id", inf.id)
        for key, val in (extra_headers or {}).items():
            self.send_header(key, val)
        self.end_headers()
        self.wfile.write(data)
        return code

    def _error(self, code: int, message: str,
               extra_headers: dict | None = None, **fields) -> int:
        return self._send(
            code, payloads.render_json({"error": message, **fields}),
            extra_headers=extra_headers,
        )

    def _json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise payloads.RequestError("empty request body (expected JSON)")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise payloads.RequestError(f"malformed JSON body: {exc}")
        if not isinstance(body, dict):
            raise payloads.RequestError(
                f"request body must be a JSON object (got {type(body).__name__})"
            )
        return body

    # ---- endpoint implementations ---------------------------------------

    def _endpoint_healthz(self) -> int:
        return self._send(200, payloads.render_json(self.state.health()))

    def _endpoint_metrics(self) -> int:
        merged = self.state.merged_registry()
        text = prometheus_text(merged)
        summary = quantile_summary(merged)
        if summary:
            # Appended as comment lines: scrapers ignore them, humans
            # get p50/p95/p99 without histogram_quantile arithmetic.
            text += summary
        return self._send(200, text, content_type="text/plain; version=0.0.4")

    def _endpoint_telemetry(self) -> int:
        payload = self.state.sampler.payload()
        payload["slowest"] = [
            rec for _, rec in sorted(self.state.recorder.exemplars().items())
        ]
        return self._send(200, payloads.render_json(payload))

    def _endpoint_dashboard(self) -> int:
        payload = self.state.sampler.payload()
        payload["slowest"] = [
            rec for _, rec in sorted(self.state.recorder.exemplars().items())
        ]
        return self._send(
            200, render_dashboard(payload),
            content_type="text/html; charset=utf-8",
        )

    def _endpoint_fidelity(self, query: dict) -> int:
        figures = payloads.resolve_figures(
            ",".join(query.get("figures", [])) or None
        )
        with self.state.gate.admit():
            payload, _ = self.state.coalescer.do(
                ("fidelity", tuple(figures), model_version()),
                lambda: payloads.fidelity_payload(figures),
            )
        return self._send(200, payloads.render_json(payload))

    def _endpoint_run(self) -> int:
        body = self._json_body()
        name = payloads.resolve_app(body.get("app"))
        platform = payloads.resolve_platform(body.get("platform", "max9480"))
        with self.state.gate.admit():
            cfg, est = self.state.best_run(name, platform)
        payload = payloads.best_run_payload(name, platform, cfg, est)
        return self._send(200, payloads.render_json(payload))

    def _endpoint_sweep(self) -> int:
        body = self._json_body()
        apps = body.get("apps") or list(APP_ORDER)
        if not isinstance(apps, list):
            raise payloads.RequestError(f"'apps' must be a list (got {apps!r})")
        names = [payloads.resolve_app(a) for a in apps]
        raw_platforms = body.get("platforms", ["max9480"])
        if raw_platforms == "all":
            platforms = list(ALL_PLATFORMS)
        elif isinstance(raw_platforms, list):
            platforms = [payloads.resolve_platform(p) for p in raw_platforms]
        else:
            raise payloads.RequestError(
                f"'platforms' must be a list or 'all' (got {raw_platforms!r})"
            )
        with self.state.gate.admit():
            payload, _ = self.state.coalescer.do(
                ("sweep", tuple(names),
                 tuple(p.short_name for p in platforms), model_version()),
                lambda: payloads.sweep_payload(
                    names, platforms, run_plan=self.state.executor.run_plan
                ),
            )
        return self._send(200, payloads.render_json(payload))

    def _endpoint_explain(self) -> int:
        body = self._json_body()
        name = payloads.resolve_app(body.get("app"))
        platform = payloads.resolve_platform(body.get("platform", "max9480"))
        vs = body.get("vs")
        other = payloads.resolve_platform(vs) if vs is not None else None
        knobs = payloads.resolve_what_if(body.get("what_if") or {})
        with self.state.gate.admit():
            key = ("explain", name, platform.short_name,
                   other.short_name if other else None,
                   tuple(sorted(knobs.items())), model_version())
            payload, _ = self.state.coalescer.do(
                key,
                lambda: payloads.explain_payload(
                    name, platform, vs=other, what_if=knobs
                ),
            )
        return self._send(200, payloads.render_json(payload))

    def _endpoint_debug_requests(self, endpoint: str) -> int:
        """Flight recorder: ``/debug/requests`` (ring, newest first) or
        ``/debug/requests/<id>`` (one record; 404 when unknown or aged
        out of the ring, with the standard error-body shape)."""
        recorder = self.state.recorder
        if endpoint == "/debug/requests":
            return self._send(200, payloads.render_json({
                "capacity": recorder.capacity,
                "count": len(recorder),
                "requests": recorder.records(),
            }))
        request_id = endpoint.rpartition("/")[2]
        record = recorder.get(request_id)
        if record is None:
            return self._error(
                404, f"no flight record for request id {request_id!r}"
            )
        return self._send(200, payloads.render_json(record))

    # ---- dispatch --------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        endpoint = url.path.rstrip("/") or "/"
        # One metrics/flight label for every record detail lookup —
        # per-ID labels would grow the registry without bound.
        label = (
            "/debug/requests/<id>"
            if endpoint.startswith("/debug/requests/") else endpoint
        )
        t0 = time.perf_counter()
        cfg = self.state.config
        with ExitStack() as stack:
            # Handler threads have empty contexts; install the embedded
            # observability scope (if any) before minting the request.
            if cfg.tracer is not None:
                stack.enter_context(tracing(cfg.tracer))
            if cfg.session_metrics is not None:
                stack.enter_context(collecting(cfg.session_metrics))
            inf = flight.begin(label, method)
            code = self._route(method, endpoint, url)
            duration = time.perf_counter() - t0
            tracer = active_tracer()
            if tracer is not None:
                tracer.wall_span(
                    "serve", f"{method} {label}", t0, t0 + duration,
                    track=("serve", threading.current_thread().name),
                    request_id=inf.id, status=code,
                )
            record = self.state.recorder.complete(inf, code, duration)
            self.state.log_access(record)
        sm.inc("serve_requests_total", endpoint=label, status=code)
        sm.observe("serve_request_seconds", duration, endpoint=label)
        for stage, seconds in record["stages"].items():
            sm.observe(
                "serve_stage_seconds", seconds,
                buckets=sm.STAGE_BUCKETS, stage=stage,
            )

    def _route(self, method: str, endpoint: str, url) -> int:
        try:
            if method == "GET" and endpoint == "/healthz":
                code = self._endpoint_healthz()
            elif method == "GET" and endpoint == "/metrics":
                code = self._endpoint_metrics()
            elif method == "GET" and endpoint == "/telemetry":
                code = self._endpoint_telemetry()
            elif method == "GET" and endpoint == "/dashboard":
                code = self._endpoint_dashboard()
            elif method == "GET" and endpoint == "/fidelity":
                code = self._endpoint_fidelity(parse_qs(url.query))
            elif method == "POST" and endpoint == "/run":
                code = self._endpoint_run()
            elif method == "POST" and endpoint == "/sweep":
                code = self._endpoint_sweep()
            elif method == "POST" and endpoint == "/explain":
                code = self._endpoint_explain()
            elif method == "GET" and (
                endpoint == "/debug/requests"
                or endpoint.startswith("/debug/requests/")
            ):
                code = self._endpoint_debug_requests(endpoint)
            elif endpoint in ("/healthz", "/metrics", "/telemetry",
                              "/dashboard", "/fidelity",
                              "/run", "/sweep", "/explain") or (
                endpoint == "/debug/requests"
                or endpoint.startswith("/debug/requests/")
            ):
                code = self._error(
                    405, f"{method} not allowed on {endpoint}",
                    extra_headers={"Allow":
                                   "POST" if endpoint in ("/run", "/sweep",
                                                          "/explain")
                                   else "GET"},
                )
            else:
                code = self._error(404, f"no such endpoint {endpoint!r}")
        except Saturated as exc:
            code = self._error(
                429, str(exc), retry_after_s=exc.retry_after,
                extra_headers={"Retry-After": str(exc.retry_after)},
            )
        except payloads.RequestError as exc:
            code = self._error(400, str(exc))
        except ValueError as exc:  # e.g. "no feasible configuration"
            code = self._error(400, str(exc))
        except BrokenPipeError:  # client went away; nothing to send
            code = 499
        except Exception as exc:  # pragma: no cover - defensive
            code = self._error(500, f"internal error: {exc}")
        return code

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


class ReproServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServeState`."""

    daemon_threads = True
    # http.server's default listen backlog of 5 drops SYNs under a
    # concurrent-client burst (each drop costs the client a ~1 s
    # retransmit); admission control belongs to the gate, not the
    # accept queue.
    request_queue_size = 128

    def __init__(self, config: ServeConfig):
        self.state = ServeState(config)
        super().__init__((config.host, config.port), _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain the batcher, release
        the process-default engine, close the socket."""
        self.shutdown()
        self.server_close()
        self.state.close()

    def run_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread (tests and the bench harness)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread


def create_server(**config_kwargs) -> ReproServer:
    """Build a server from :class:`ServeConfig` keyword overrides
    (``port=0`` binds an ephemeral port)."""
    return ReproServer(ServeConfig(**config_kwargs))
