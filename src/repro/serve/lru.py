"""LRU in-memory tier in front of the content-addressed result store.

The persistent :class:`~repro.engine.store.ResultStore` deserializes an
:class:`~repro.perfmodel.roofline.AppEstimate` from its JSON record on
every ``get``; under serving load the same handful of hot keys is asked
for thousands of times.  :class:`LRUStore` wraps a store with a bounded
ordered-dict tier holding the *deserialized* estimates, so a warm
request costs one dict lookup instead of a record rebuild — the shared
warm cache the whole worker pool reads.

The wrapper is interface-compatible with ``ResultStore`` (the engine
only ever calls ``get``/``put``/``__contains__``/``__len__``/``clear``
plus the ``path``/``persistent`` properties), writes through on ``put``,
and registers every live instance in a process-wide ``WeakSet`` so
:func:`repro.harness.runner.clear_cache` can call :func:`invalidate_all`
without importing the serve package on serve-less runs.

Estimates are frozen dataclasses and are returned by reference; callers
must not mutate them (none do — every consumer treats estimates as
values).
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict

from ..engine.store import ResultStore
from ..perfmodel.roofline import AppEstimate
from . import flight
from . import metrics as sm

__all__ = ["LRUStore", "DEFAULT_CAPACITY", "invalidate_all"]

DEFAULT_CAPACITY = 4096

#: Every live LRUStore, so a global cache clear can reach the memory
#: tiers without holding references that would keep them alive.
_live: "weakref.WeakSet[LRUStore]" = weakref.WeakSet()


def invalidate_all() -> int:
    """Drop the memory tier of every live LRU store (the backing
    stores are untouched); returns the number of tiers invalidated.
    ``repro.harness.runner.clear_cache`` calls this — via
    ``sys.modules`` — after wiping the engine's persistent store."""
    stores = list(_live)
    for store in stores:
        store.invalidate()
    return len(stores)


class LRUStore:
    """Bounded most-recently-used estimate tier over a ``ResultStore``."""

    def __init__(self, inner: ResultStore, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1 (got {capacity})")
        self.inner = inner
        self.capacity = capacity
        self._tier: OrderedDict[str, AppEstimate] = OrderedDict()
        self._lock = threading.Lock()
        _live.add(self)

    # ---- the ResultStore interface the engine uses -----------------------

    @property
    def path(self):
        return self.inner.path

    @property
    def persistent(self) -> bool:
        return self.inner.persistent

    def get(self, key: str) -> AppEstimate | None:
        with self._lock:
            est = self._tier.get(key)
            if est is not None:
                self._tier.move_to_end(key)
        if est is not None:
            sm.inc("serve_lru_hits_total")
            return est
        sm.inc("serve_lru_misses_total")
        t_io = time.perf_counter()
        est = self.inner.get(key)
        flight.add_stage("store_io", time.perf_counter() - t_io)
        if est is not None:
            self._insert(key, est)
        return est

    def put(self, key: str, estimate: AppEstimate) -> None:
        t_io = time.perf_counter()
        self.inner.put(key, estimate)
        flight.add_stage("store_io", time.perf_counter() - t_io)
        self._insert(key, estimate)

    def _insert(self, key: str, estimate: AppEstimate) -> None:
        with self._lock:
            self._tier[key] = estimate
            self._tier.move_to_end(key)
            evicted = 0
            while len(self._tier) > self.capacity:
                self._tier.popitem(last=False)
                evicted += 1
        if evicted:
            sm.inc("serve_lru_evictions_total", evicted)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._tier:
                return True
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def estimates(self, app: str | None = None, platform: str | None = None):
        return self.inner.estimates(app, platform)

    def compact(self) -> int:
        return self.inner.compact()

    # ---- tier management -------------------------------------------------

    def invalidate(self) -> None:
        """Drop the memory tier only (backing store untouched)."""
        with self._lock:
            self._tier.clear()

    def clear(self) -> None:
        """Drop every entry: the memory tier *and* the backing store."""
        self.invalidate()
        self.inner.clear()

    @property
    def tier_len(self) -> int:
        with self._lock:
            return len(self._tier)
