"""Multi-worker sharding of sweep plans by store key.

The engine's own executor fans a plan out over a thread pool in chunk
order; under a serving workload we want *affinity* instead: every job
whose estimate lives under the same region of the content-addressed
key space should land on the same worker, so one worker's hot loop
touches one slice of the store (and of the LRU tier) rather than all
workers bouncing over all keys.  :func:`shard_plan` partitions a
:class:`~repro.engine.jobs.JobPlan`'s jobs by a stable hash of each
job's store key — ``SweepEngine.result_address`` — and
:class:`ShardedExecutor` runs one worker thread per non-empty shard,
reassembling results in plan order so the output is indistinguishable
from the engine's serial ``run_plan`` (the estimates themselves are
content-addressed and therefore identical by construction).

With caching disabled there is no store key; jobs then shard by the
same stable digest over their (app, platform, config-label) identity.

When the engine's vectorized path is enabled, the shard threads only
do the store *lookups* (keeping the per-shard LRU affinity that is the
point of sharding) and collect the misses; the misses are then
evaluated as **one** batched ``SweepEngine.evaluate_batch`` call on the
calling thread — this is how a merged serve batch hits the vectorized
evaluator exactly once.
"""

from __future__ import annotations

import contextvars
import threading
import time
import zlib

from ..engine.core import SweepEngine
from ..engine.jobs import Job, JobPlan, JobResult
from ..obs.tracer import active_tracer
from . import flight
from . import metrics as sm

__all__ = ["shard_index", "shard_plan", "ShardedExecutor"]


def shard_index(engine: SweepEngine, job: Job, shards: int) -> int:
    """Stable shard assignment of one job by its store key."""
    if engine.use_cache:
        key = engine.result_address(job.app, job.platform, job.config)
    else:
        key = f"{job.app}|{job.platform.short_name}|{job.config.label()}"
    return zlib.crc32(key.encode()) % shards


def shard_plan(
    engine: SweepEngine, plan: JobPlan, shards: int
) -> list[list[tuple[int, Job]]]:
    """Partition a plan's runnable jobs into ``shards`` buckets of
    (plan-position, job) pairs, keyed by store key."""
    buckets: list[list[tuple[int, Job]]] = [[] for _ in range(shards)]
    for pos, job in enumerate(plan.jobs):
        buckets[shard_index(engine, job, shards)].append((pos, job))
    return buckets


class ShardedExecutor:
    """Run job plans through an engine, one worker per store-key shard.

    Mirrors ``SweepEngine.run_plan``'s contract exactly — specs and
    hierarchies prebuilt serially, one :class:`JobResult` per runnable
    job in plan order, skipped jobs appended — but dispatches each
    shard on its own thread.
    """

    def __init__(self, engine: SweepEngine, shards: int = 4):
        if shards < 1:
            raise ValueError(f"shards must be >= 1 (got {shards})")
        self.engine = engine
        self.shards = shards

    def run_plan(self, plan: JobPlan) -> list[JobResult]:
        engine = self.engine
        t_shard = time.perf_counter()
        use_vec = engine._use_vectorized()
        engine.last_evaluator = "vectorized" if use_vec else "scalar"
        with engine.metrics.timed_run():
            for name in plan.apps:
                engine.app_spec(name)
            for platform in plan.platforms:
                engine.hierarchy(platform)
            results: list[JobResult | None] = [None] * len(plan.jobs)
            buckets = [b for b in shard_plan(engine, plan, self.shards) if b]
            sm.inc("serve_sharded_jobs_total", len(plan.jobs))
            misses: list[tuple[int, Job]] = []
            misses_lock = threading.Lock()

            if use_vec:

                def work(bucket: list[tuple[int, Job]]) -> None:
                    mine = []
                    for pos, job in bucket:
                        res = engine.lookup(job)
                        if res is None:
                            mine.append((pos, job))
                        else:
                            results[pos] = res
                    with misses_lock:
                        misses.extend(mine)

            else:

                def work(bucket: list[tuple[int, Job]]) -> None:
                    for pos, job in bucket:
                        results[pos] = engine.evaluate(job)

            if len(buckets) <= 1:
                for bucket in buckets:
                    work(bucket)
            else:
                # One context copy per worker, so installed tracers /
                # metric registries propagate (a Context is single-entry,
                # hence one copy each rather than one shared).
                threads = [
                    threading.Thread(
                        target=contextvars.copy_context().run,
                        args=(work, bucket),
                        name=f"serve-shard-{i}",
                    )
                    for i, bucket in enumerate(buckets)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            if misses:
                # Plan order makes the batch deterministic regardless of
                # which shard thread collected which miss.
                misses.sort(key=lambda pj: pj[0])
                batch = engine.evaluate_batch([job for _, job in misses])
                for (pos, _job), res in zip(misses, batch):
                    results[pos] = res
        engine.metrics.count("jobs_skipped", len(plan.skipped))
        t_done = time.perf_counter()
        flight.add_stage("shard_exec", t_done - t_shard)
        tracer = active_tracer()
        if tracer is not None:
            tracer.wall_span(
                "serve", "shard_exec", t_shard, t_done,
                track=("serve", threading.current_thread().name),
                jobs=len(plan.jobs), shards=len(buckets),
                evaluator=engine.last_evaluator,
            )
        out = [r for r in results if r is not None]
        out.extend(
            JobResult(job, None, "skipped", reason=reason)
            for job, reason in plan.skipped
        )
        return out
