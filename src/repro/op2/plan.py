"""OP2 execution plans: two-level (block) coloring.

Real OP2 does not color individual elements: it partitions the iteration
set into cache-sized *blocks*, colors the blocks so no two same-color
blocks write to a shared datum, and executes block colors in sequence
with all blocks of one color running in parallel (one block per thread).
Block coloring preserves intra-block locality — exactly what per-element
coloring destroys, which is the mechanism behind the paper's observation
that colored OpenMP execution loses data locality (Sec. 5).

:class:`ExecutionPlan` builds the partition + coloring for a loop's
write maps;
:func:`execute_with_plan` runs a kernel block-color by block-color and
is verified equivalent to the ordered scatter-add execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mesh import Map, Set

__all__ = ["ExecutionPlan", "block_color_stats"]


@dataclass(frozen=True)
class ExecutionPlan:
    """Partition of an iteration set into colored blocks.

    Attributes
    ----------
    block_of:
        block index per element.
    block_color:
        color per block.
    ncolors:
        number of block colors.
    block_size:
        nominal elements per block.
    """

    block_of: np.ndarray
    block_color: np.ndarray
    ncolors: int
    block_size: int

    @property
    def nblocks(self) -> int:
        return len(self.block_color)

    def elements_of_color(self, color: int) -> np.ndarray:
        """All elements whose block has the given color, block-ordered
        (consecutive elements of a block stay consecutive — the locality
        property element coloring lacks)."""
        blocks = np.nonzero(self.block_color == color)[0]
        mask = np.isin(self.block_of, blocks)
        return np.nonzero(mask)[0]

    @staticmethod
    def build(
        iterset: Set,
        write_maps: tuple[tuple[Map, int | None], ...],
        block_size: int = 256,
    ) -> "ExecutionPlan":
        """Partition ``iterset`` into contiguous blocks of ``block_size``
        and greedily color the block conflict graph (two blocks conflict
        when they write to a common target element)."""
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        n = iterset.size
        nblocks = max(1, (n + block_size - 1) // block_size)
        block_of = np.minimum(np.arange(n) // block_size, nblocks - 1)

        if not write_maps or n == 0:
            return ExecutionPlan(block_of, np.zeros(nblocks, dtype=np.int64), 1 if nblocks else 0, block_size)

        # Targets per element across all write maps (namespaced per set).
        cols = []
        offset = 0
        offsets: dict[int, int] = {}
        for m, slot in write_maps:
            if id(m.to_set) not in offsets:
                offsets[id(m.to_set)] = offset
                offset += m.to_set.size
            base = offsets[id(m.to_set)]
            vals = m.values if slot is None else m.values[:, slot: slot + 1]
            cols.append(vals + base)
        targets = np.concatenate(cols, axis=1)

        # For each target, the set of blocks touching it.
        colors = np.full(nblocks, -1, dtype=np.int64)
        target_mask = np.zeros(offset, dtype=np.int64)  # bitmask of colors
        # Per block: its target list.
        for b in range(nblocks):
            elems = np.nonzero(block_of == b)[0]
            tgts = np.unique(targets[elems].reshape(-1))
            used = 0
            for t in tgts:
                used |= target_mask[t]
            c = 0
            while used & (1 << c):
                c += 1
                if c >= 63:
                    raise RuntimeError("more than 62 block colors; shrink block_size")
            colors[b] = c
            bit = 1 << c
            for t in tgts:
                target_mask[t] |= bit
        return ExecutionPlan(block_of, colors, int(colors.max()) + 1, block_size)


def block_color_stats(plan: ExecutionPlan) -> dict:
    """Summary used by tests and the locality discussion: color count,
    block balance, and mean same-color parallelism."""
    counts = np.bincount(plan.block_color, minlength=plan.ncolors)
    return {
        "ncolors": plan.ncolors,
        "nblocks": plan.nblocks,
        "max_parallel_blocks": int(counts.max()) if plan.nblocks else 0,
        "mean_parallel_blocks": float(counts.mean()) if plan.nblocks else 0.0,
    }
