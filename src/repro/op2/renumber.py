"""Mesh renumbering for cache locality (bandwidth minimization).

OP2 applications renumber their meshes so consecutively processed
elements touch nearby data — this is what keeps most of an edge sweep's
gathers in cache (the ``gather_hit`` parameter of the performance model).
Two orderings are provided:

- :func:`rcm_order` — reverse Cuthill–McKee over the element adjacency
  graph (the classic bandwidth-minimizing ordering);
- :func:`apply_node_order` / :func:`sort_edges_by_node` — helpers to
  permute dats/maps consistently and to order edge lists by their
  endpoints.

``bandwidth`` quantifies the result: the maximum |i - j| over mesh
edges, i.e. the farthest a gather reaches from its neighbour.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .mesh import Map

__all__ = ["rcm_order", "bandwidth", "apply_node_order", "sort_edges_by_node"]


def _adjacency(n: int, edges: np.ndarray) -> list[list[int]]:
    adj: list[list[int]] = [[] for _ in range(n)]
    for a, b in np.asarray(edges, dtype=np.int64).reshape(-1, 2):
        if a != b:
            adj[a].append(int(b))
            adj[b].append(int(a))
    return adj


def rcm_order(n: int, edges: np.ndarray) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of an ``n``-node graph.

    Returns ``order`` such that ``order[k]`` is the old index of the node
    placed at new position ``k``.  Disconnected components are processed
    from their lowest-degree unvisited node, so the ordering always
    covers every node exactly once.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    adj = _adjacency(n, edges)
    degree = np.array([len(a) for a in adj])
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Process components, seeding each from its minimum-degree node.
    seeds = np.argsort(degree, kind="stable")
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue = deque([int(seed)])
        while queue:
            v = queue.popleft()
            order.append(v)
            nbrs = sorted({u for u in adj[v] if not visited[u]},
                          key=lambda u: degree[u])
            for u in nbrs:
                visited[u] = True
                queue.append(u)
    return np.asarray(order[::-1], dtype=np.int64)  # the *reverse* of CM


def bandwidth(edges: np.ndarray, order: np.ndarray | None = None) -> int:
    """Graph bandwidth max|i-j| over edges, optionally under ``order``.

    ``order[k] = old index at new position k`` (as returned by
    :func:`rcm_order`).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size == 0:
        return 0
    if order is not None:
        n = int(max(edges.max() + 1, len(order)))
        new_pos = np.empty(n, dtype=np.int64)
        new_pos[np.asarray(order)] = np.arange(len(order))
        edges = new_pos[edges]
    return int(np.abs(edges[:, 0] - edges[:, 1]).max())


def apply_node_order(order: np.ndarray, edges: np.ndarray,
                     node_data: np.ndarray | None = None):
    """Renumber an edge list (and optional per-node data) under ``order``.

    Returns ``(new_edges, new_node_data)`` where node ``order[k]`` has
    moved to index ``k``.
    """
    order = np.asarray(order, dtype=np.int64)
    n = len(order)
    new_pos = np.empty(n, dtype=np.int64)
    new_pos[order] = np.arange(n)
    new_edges = new_pos[np.asarray(edges, dtype=np.int64)]
    new_data = node_data[order] if node_data is not None else None
    return new_edges, new_data


def sort_edges_by_node(edges: np.ndarray, *edge_data: np.ndarray):
    """Order edges by their (min endpoint, max endpoint) so consecutive
    edges touch nearby nodes; permutes any per-edge arrays alongside."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    lo = edges.min(axis=1)
    hi = edges.max(axis=1)
    perm = np.lexsort((hi, lo))
    out = [edges[perm]]
    out.extend(np.asarray(d)[perm] for d in edge_data)
    return tuple(out) if len(out) > 1 else out[0]
