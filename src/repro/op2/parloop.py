"""OP2-style parallel loops over unstructured sets.

Kernels are written element-wise but execute vectorized: each argument
arrives as a numpy array over the iteration set (or the current color's
subset).  Indirect arguments gather through a :class:`~repro.op2.mesh.Map`
before the kernel and scatter after it:

    # edge kernel: flux increments into the two end cells
    def flux(state_l, state_r, inc_l, inc_r):
        f = 0.5 * (state_l - state_r)
        inc_l[:] = -f
        inc_r[:] = +f

    ctx.par_loop(flux, "flux", edges,
                 arg(q, edge2cell, 0, Access.READ),
                 arg(q, edge2cell, 1, Access.READ),
                 arg(res, edge2cell, 0, Access.INC),
                 arg(res, edge2cell, 1, Access.INC), flops_per_elem=4)

Indirect increments race between elements sharing a target; the runtime
resolves them either with an ordered scatter-add (``mode="seq"``, the
pure-MPI execution model) or color-by-color with conflict-free direct
scatters (``mode="colored"`` — the OpenMP/SYCL execution scheme of the
paper's Section 4, validated against the sequential mode in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..ir.access import AccessDescriptor, describe
from ..ir.executor import InstrumentedExecutor
from ..ir.ledger import LoopTraffic
from ..ir.plan import KernelPlan
from ..ops.access import Access
from .coloring import color_iterset
from .mesh import Dat, Global, Map, Set

__all__ = [
    "Arg", "arg", "arg_direct", "arg_global", "Op2LoopRecord", "Op2Context",
    "lower_args", "describe_args",
]


def lower_args(args) -> tuple[AccessDescriptor, ...]:
    """Lower unstructured-loop arguments to DSL-neutral IR descriptors.

    One :class:`~repro.ir.access.AccessDescriptor` per argument: dats
    carry their transfer width (``dim * dtype_bytes``) and, when
    indirect, the gather map's name/arity/slot; globals lower to
    traffic-exempt ``"gbl"`` entries.  Everything downstream of the
    engine — byte accounting, spec construction, trace access strings —
    consumes these, never the :class:`Arg` objects.
    """
    out = []
    for a in args:
        if a.is_global:
            out.append(AccessDescriptor(name="gbl", access=a.access, is_global=True))
            continue
        width = a.dat.dim * a.dat.dtype_bytes
        if a.is_indirect:
            out.append(
                AccessDescriptor(
                    name=a.dat.name,
                    access=a.access,
                    width_bytes=width,
                    dtype_bytes=a.dat.dtype_bytes,
                    map_name=a.map.name,
                    map_arity=a.map.arity,
                    map_index=a.index,
                )
            )
        else:
            out.append(
                AccessDescriptor(
                    name=a.dat.name,
                    access=a.access,
                    width_bytes=width,
                    dtype_bytes=a.dat.dtype_bytes,
                )
            )
    return tuple(out)


def describe_args(args) -> tuple[str, ...]:
    """Compact per-argument access summary for tracing/diagnostics:
    ``"q@e2c[0]:read"`` (indirect), ``"res:inc"`` (direct),
    ``"gbl:inc"`` (global).  Kept as the DSL-facing name for
    :func:`repro.ir.access.describe` over the lowered arguments."""
    return describe(lower_args(args))


@dataclass(frozen=True)
class Arg:
    """One par_loop argument (direct, indirect, or global)."""

    dat: Dat | None
    map: Map | None
    index: int | None  # which map slot; None = all slots (n, arity, dim)
    access: Access
    glob: Global | None = None

    def __post_init__(self) -> None:
        if self.glob is not None:
            if self.access in (Access.RW, Access.WRITE):
                raise ValueError("globals support READ, INC, MIN, MAX")
            return
        if self.dat is None:
            raise ValueError("argument needs a dat or a global")
        if self.map is not None:
            if self.map.to_set is not self.dat.set:
                raise ValueError(
                    f"map {self.map.name!r} targets {self.map.to_set.name!r}, "
                    f"but dat {self.dat.name!r} lives on {self.dat.set.name!r}"
                )
            if self.index is not None and not (0 <= self.index < self.map.arity):
                raise ValueError(f"map index {self.index} out of arity {self.map.arity}")

    @property
    def is_indirect(self) -> bool:
        return self.map is not None

    @property
    def is_global(self) -> bool:
        return self.glob is not None


def arg(dat: Dat, map_: Map, index: int | None, access: Access) -> Arg:
    """An indirect argument: ``dat[map_[e, index]]``."""
    return Arg(dat, map_, index, access)


def arg_direct(dat: Dat, access: Access) -> Arg:
    """A direct argument on the iteration set itself."""
    return Arg(dat, None, None, access)


def arg_global(glob: Global, access: Access) -> Arg:
    """A global parameter (READ) or reduction (INC/MIN/MAX)."""
    return Arg(None, None, None, access, glob=glob)


#: Accumulated execution profile of one unstructured loop — absorbed
#: into the DSL-neutral :class:`~repro.ir.ledger.LoopTraffic` (which
#: keeps the ``elements``/``*_per_elem`` vocabulary as aliases); the
#: name remains for the DSL-facing API.
Op2LoopRecord = LoopTraffic


class Op2Context:
    """Runtime for unstructured parallel loops.

    ``mode="seq"`` executes all elements at once, resolving indirect
    increments with ``np.add.at`` (deterministic, order-independent up to
    fp rounding of the unordered reduction — the same caveat real OP2
    carries).  ``mode="colored"`` partitions the iteration set so no two
    same-color elements share an indirect write target, then executes
    color by color with plain fancy-indexed updates.
    """

    def __init__(self, mode: str = "seq", block_size: int = 256, timing=None) -> None:
        if mode not in ("seq", "colored", "blocked"):
            raise ValueError("mode must be 'seq', 'colored' or 'blocked'")
        self.mode = mode
        self.block_size = block_size
        #: Optional :class:`repro.ops.runtime.TimingModel`: loop
        #: executions then accumulate simulated seconds (serial) or
        #: advance the communicator clock (distributed contexts).
        self.timing = timing
        #: The shared instrumented execution path (traffic ledger, timing
        #: charge, span emission) — see :mod:`repro.ir.executor`.
        self._exec = InstrumentedExecutor(self, "op2")
        self.reduction_count = 0
        #: Total bytes of allocated dats (the loop chain's reuse footprint).
        self.state_bytes = 0
        self._color_cache: dict[tuple, np.ndarray] = {}

    @property
    def records(self) -> dict[str, Op2LoopRecord]:
        """Accumulated per-loop profiles (the executor's traffic ledger)."""
        return self._exec.ledger.records

    @property
    def loop_order(self) -> list[str]:
        """Loop names in first-execution order."""
        return self._exec.ledger.loop_order

    @property
    def simulated_time(self) -> float:
        """Accumulated modeled kernel seconds (serial timed runs)."""
        return self._exec.simulated_time

    # ---- declaration factories ---------------------------------------
    # (Overridden by the distributed context, which localizes each
    # declaration; writing apps against these methods makes them run
    # unchanged in serial and distributed mode.)

    def set(self, name: str, size: int) -> Set:
        return Set(name, size)

    def map(self, name: str, from_set: Set, to_set: Set, values: np.ndarray) -> Map:
        return Map(name, from_set, to_set, values)

    def dat(self, dset: Set, dim: int, name: str, dtype=np.float64,
            data: np.ndarray | None = None) -> Dat:
        d = Dat(dset, dim, name, dtype, data)
        self.state_bytes += d.data.nbytes
        return d

    # ------------------------------------------------------------------

    def _resolve_iterset(self, iterset: Set) -> Set:
        """Hook: map the app-facing set handle to the executed set (the
        distributed context iterates its owned prefix only)."""
        return iterset

    def _direct_set_ok(self, dat: Dat, iterset: Set) -> bool:
        """Hook: is ``dat`` a valid direct argument for ``iterset``?"""
        return dat.set is iterset

    def par_loop(
        self,
        kernel: Callable,
        name: str,
        iterset: Set,
        *args: Arg,
        flops_per_elem: float = 0.0,
    ) -> None:
        iterset = self._resolve_iterset(iterset)
        for a in args:
            if a.is_indirect and a.map.from_set is not iterset:
                raise ValueError(
                    f"loop {name!r}: map {a.map.name!r} is from "
                    f"{a.map.from_set.name!r}, not the iteration set"
                )
            if not a.is_global and not a.is_indirect and not self._direct_set_ok(a.dat, iterset):
                raise ValueError(
                    f"loop {name!r}: direct dat {a.dat.name!r} not on iteration set"
                )

        n = iterset.size
        # Global reduction buffers live across colors and are finished
        # exactly once per loop (collective-safe in distributed mode).
        gbl_bufs = {i: _global_buffer(a) for i, a in enumerate(args) if a.is_global}
        has_indirect_writes = any(a.is_indirect and a.access.writes for a in args)
        if self.mode == "colored" and has_indirect_writes:
            colors = self._colors(iterset, args)
            for c in range(colors.max() + 1 if n else 0):
                elems = np.nonzero(colors == c)[0]
                self._execute(kernel, args, elems, gbl_bufs)
        elif self.mode == "blocked" and has_indirect_writes:
            plan = self._plan(iterset, args)
            for c in range(plan.ncolors):
                self._execute(kernel, args, plan.elements_of_color(c), gbl_bufs)
        else:
            self._execute(kernel, args, np.arange(n), gbl_bufs)
        for i, a in enumerate(args):
            if a.is_global and a.access is not Access.READ:
                self._finish_global(a, gbl_bufs[i])
        # Lower to the IR and hand off: the shared executor accounts the
        # traffic, charges the timing model and emits the kernel span
        # (opened here, after the collective reduction finish — the span
        # covers accounting only, matching the historical taxonomy).
        token = self._exec.begin()
        plan = KernelPlan(
            name, "op2", n, lower_args(args),
            flops_per_point=flops_per_elem, mode=self.mode,
        )
        self._exec.finish(plan, token)

    # ------------------------------------------------------------------

    def _plan(self, iterset: Set, args):
        """Block-colored execution plan (OP2's two-level scheme)."""
        from .plan import ExecutionPlan

        maps = tuple(
            (a.map, a.index) for a in args if a.is_indirect and a.access.writes
        )
        key = ("plan", id(iterset)) + tuple((id(m), i) for m, i in maps)
        if key not in self._color_cache:
            self._color_cache[key] = ExecutionPlan.build(
                iterset, maps, self.block_size
            )
        return self._color_cache[key]

    def _colors(self, iterset: Set, args) -> np.ndarray:
        maps = tuple(
            (a.map, a.index)
            for a in args
            if a.is_indirect and a.access.writes
        )
        key = (id(iterset),) + tuple((id(m), i) for m, i in maps)
        if key not in self._color_cache:
            self._color_cache[key] = color_iterset(iterset, maps)
        return self._color_cache[key]

    def _execute(self, kernel, args, elems: np.ndarray, gbl_bufs: dict) -> None:
        if elems.size == 0:
            return
        buffers = []
        kernel_args = []
        for i, a in enumerate(args):
            if a.is_global:
                buf = gbl_bufs[i]
                kernel_args.append(buf)
            elif not a.is_indirect:
                view = a.dat.data[elems]  # fancy index: a gathered copy
                if a.access is Access.READ:
                    view.setflags(write=False)
                buffers.append((a, view, elems))
                kernel_args.append(view)
            else:
                idx = (
                    a.map.values[elems, a.index]
                    if a.index is not None
                    else a.map.values[elems]
                )
                if a.access is Access.INC:
                    shape = idx.shape + (a.dat.dim,)
                    buf = np.zeros(shape, dtype=a.dat.dtype)
                elif a.access is Access.WRITE:
                    shape = idx.shape + (a.dat.dim,)
                    buf = np.empty(shape, dtype=a.dat.dtype)
                else:  # READ / RW gather
                    buf = a.dat.data[idx].copy()
                    if a.access is Access.READ:
                        buf.setflags(write=False)
                buffers.append((a, buf, idx))
                kernel_args.append(buf)
        kernel(*kernel_args)
        # Scatter phase.
        for a, buf, idx in buffers:
            if not a.is_indirect:
                if a.access.writes:
                    a.dat.data[idx] = buf
            else:
                if a.access is Access.INC:
                    if self.mode == "colored":  # blocked mode keeps add.at
                        # Conflict-free within a color: direct update.
                        flat_idx = idx.reshape(-1)
                        a.dat.data[flat_idx] += buf.reshape(flat_idx.size, a.dat.dim)
                    else:
                        np.add.at(
                            a.dat.data,
                            idx.reshape(-1),
                            buf.reshape(-1, a.dat.dim),
                        )
                elif a.access.writes:
                    a.dat.data[idx.reshape(-1)] = buf.reshape(-1, a.dat.dim)

    def _finish_global(self, a: Arg, buf: np.ndarray) -> None:
        if a.access is Access.READ:
            return
        if a.access is Access.INC:
            a.glob.value += buf
        elif a.access is Access.MIN:
            np.minimum(a.glob.value, buf, out=a.glob.value)
        elif a.access is Access.MAX:
            np.maximum(a.glob.value, buf, out=a.glob.value)
        self.reduction_count += 1

    # ------------------------------------------------------------------

    def loop_specs(self, iterations: int = 1, point_scale: float = 1.0):
        """Per-iteration :class:`~repro.perfmodel.kernelmodel.LoopSpec`
        inputs (unstructured loops carry indirect access counts and are
        non-vectorizable when they have racing increments)."""
        return self._exec.ledger.loop_specs(iterations, point_scale)


def _global_buffer(a: Arg) -> np.ndarray:
    if a.access is Access.READ:
        buf = a.glob.value.copy()
        buf.setflags(write=False)
        return buf
    if a.access is Access.INC:
        return np.zeros_like(a.glob.value)
    if a.access is Access.MIN:
        return np.full_like(a.glob.value, np.inf)
    return np.full_like(a.glob.value, -np.inf)
