"""Mesh partitioning: the PT-Scotch substitute.

The paper decomposes unstructured meshes with "a standard owner-compute
decomposition of the mesh over MPI using PT-Scotch" (Sec. 4).  PT-Scotch
is a compiled C library; we substitute **recursive coordinate bisection**
(geometric, when element coordinates exist) with a spectral fallback on
the dual graph (scipy eigsh) — both produce the balanced, low-cut
partitions the communication model needs, which is the property relevant
to the reproduction (DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mesh import Map, Set

__all__ = ["partition_rcb", "partition_spectral", "PartitionQuality", "partition_quality"]


def partition_rcb(coords: np.ndarray, nparts: int) -> np.ndarray:
    """Recursive coordinate bisection.

    ``coords``: (n, d) element coordinates.  Returns int part ids, one per
    element.  Parts are balanced to within one element; each split halves
    the longest axis of the current subset's bounding box.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2:
        raise ValueError("coords must be (n, d)")
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    n = coords.shape[0]
    parts = np.zeros(n, dtype=np.int64)

    def split(elems: np.ndarray, lo: int, hi: int) -> None:
        k = hi - lo
        if k == 1 or elems.size == 0:
            parts[elems] = lo
            return
        k_left = k // 2
        # Number of elements proportional to parts on each side.
        n_left = elems.size * k_left // k
        box = coords[elems]
        axis = int(np.argmax(box.max(axis=0) - box.min(axis=0)))
        order = elems[np.argsort(coords[elems, axis], kind="stable")]
        split(order[:n_left], lo, lo + k_left)
        split(order[n_left:], lo + k_left, hi)

    split(np.arange(n), 0, nparts)
    return parts


def partition_spectral(n: int, edges: np.ndarray, nparts: int) -> np.ndarray:
    """Spectral recursive bisection on the element connectivity graph.

    ``edges``: (m, 2) pairs of connected elements.  Uses the Fiedler
    vector of the graph Laplacian per bisection level; falls back to
    index order for tiny or disconnected pieces.
    """
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    parts = np.zeros(n, dtype=np.int64)

    def fiedler_order(elems: np.ndarray) -> np.ndarray:
        if elems.size < 4:
            return elems
        lookup = -np.ones(n, dtype=np.int64)
        lookup[elems] = np.arange(elems.size)
        mask = (lookup[edges[:, 0]] >= 0) & (lookup[edges[:, 1]] >= 0)
        le = lookup[edges[mask]]
        if le.size == 0:
            return elems
        rows = np.concatenate([le[:, 0], le[:, 1]])
        cols = np.concatenate([le[:, 1], le[:, 0]])
        data = np.ones(rows.size)
        a = sp.coo_matrix((data, (rows, cols)), shape=(elems.size, elems.size)).tocsr()
        lap = sp.csgraph.laplacian(a)
        try:
            _, vecs = spla.eigsh(
                lap.asfptype(), k=2, sigma=-1e-8, which="LM", maxiter=2000
            )
            f = vecs[:, 1]
        except Exception:
            return elems
        return elems[np.argsort(f, kind="stable")]

    def split(elems: np.ndarray, lo: int, hi: int) -> None:
        k = hi - lo
        if k == 1 or elems.size == 0:
            parts[elems] = lo
            return
        k_left = k // 2
        n_left = elems.size * k_left // k
        order = fiedler_order(elems)
        split(order[:n_left], lo, lo + k_left)
        split(order[n_left:], lo + k_left, hi)

    split(np.arange(n), 0, nparts)
    return parts


@dataclass(frozen=True)
class PartitionQuality:
    """Balance and communication metrics of a partition."""

    nparts: int
    max_part: int
    min_part: int
    cut_edges: int
    total_edges: int
    avg_neighbors: float

    @property
    def imbalance(self) -> float:
        """max part size / ideal size."""
        ideal = (self.max_part * self.nparts + self.min_part * self.nparts) / (
            2 * self.nparts
        )
        return self.max_part / ideal if ideal else 1.0

    @property
    def cut_fraction(self) -> float:
        return self.cut_edges / self.total_edges if self.total_edges else 0.0


def partition_quality(parts: np.ndarray, edges: np.ndarray) -> PartitionQuality:
    """Evaluate a partition against the element connectivity graph."""
    parts = np.asarray(parts)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    nparts = int(parts.max()) + 1 if parts.size else 0
    sizes = np.bincount(parts, minlength=nparts)
    pe = parts[edges]
    cut = int(np.count_nonzero(pe[:, 0] != pe[:, 1]))
    # Neighbor sets per part.
    mask = pe[:, 0] != pe[:, 1]
    pairs = np.unique(np.sort(pe[mask], axis=1), axis=0) if cut else np.empty((0, 2))
    neigh = np.zeros(nparts)
    for a, b in pairs:
        neigh[a] += 1
        neigh[b] += 1
    return PartitionQuality(
        nparts=nparts,
        max_part=int(sizes.max()) if nparts else 0,
        min_part=int(sizes.min()) if nparts else 0,
        cut_edges=cut,
        total_edges=edges.shape[0],
        avg_neighbors=float(neigh.mean()) if nparts else 0.0,
    )
