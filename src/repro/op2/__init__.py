"""OP2-like unstructured-mesh DSL.

Sets, maps and dats describe the mesh; kernels run over sets with
gather/scatter through maps.  Race-prone indirect increments execute
either via ordered scatter-add (the pure-MPI model) or a greedy coloring
(the OpenMP/SYCL model); the owner-compute distributed context runs the
same application over simulated MPI with halo import/export.

    from repro.op2 import Op2Context, Access, arg, arg_direct

    ctx = Op2Context()
    cells = ctx.set("cells", n_cells)
    edges = ctx.set("edges", n_edges)
    e2c = ctx.map("e2c", edges, cells, edge_to_cell)
    q = ctx.dat(cells, 4, "q")
    res = ctx.dat(cells, 4, "res")
    ctx.par_loop(flux_kernel, "flux", edges,
                 arg(q, e2c, 0, Access.READ), arg(q, e2c, 1, Access.READ),
                 arg(res, e2c, 0, Access.INC), arg(res, e2c, 1, Access.INC))

Layer role (docs/ARCHITECTURE.md): unstructured-mesh execution layer —
the gather/scatter counterpart of repro.ops, with the same measured
profile outputs and tracer instrumentation.
"""

from ..ops.access import Access
from .coloring import color_iterset, validate_coloring
from .halo import DistOp2Context
from .mesh import Dat, Global, Map, Set
from .parloop import Arg, Op2Context, Op2LoopRecord, arg, arg_direct, arg_global
from .partition import (
    PartitionQuality,
    partition_quality,
    partition_rcb,
    partition_spectral,
)
from .plan import ExecutionPlan, block_color_stats
from .renumber import apply_node_order, bandwidth, rcm_order, sort_edges_by_node

__all__ = [
    "Access",
    "Set",
    "Map",
    "Dat",
    "Global",
    "Arg",
    "arg",
    "arg_direct",
    "arg_global",
    "Op2Context",
    "DistOp2Context",
    "Op2LoopRecord",
    "color_iterset",
    "validate_coloring",
    "partition_rcb",
    "partition_spectral",
    "partition_quality",
    "PartitionQuality",
    "ExecutionPlan",
    "block_color_stats",
    "rcm_order",
    "bandwidth",
    "apply_node_order",
    "sort_edges_by_node",
]
