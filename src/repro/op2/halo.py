"""Distributed OP2: owner-compute decomposition with halo exchange.

Implements the paper's Section 4 scheme for unstructured meshes: elements
of every set are assigned to ranks by a partitioner
(:mod:`repro.op2.partition`); each rank executes loops over the source
elements it owns, *importing* a halo of off-rank target elements for
reads and *exporting* increment contributions back to their owners after
indirect-INC loops.

:class:`DistOp2Context` subclasses :class:`~repro.op2.parloop.Op2Context`
and overrides the declaration factories, so an application written once
against the context API runs serially or distributed without change —
tests assert both paths agree to fp-reduction tolerance.

Internals per global set: an *exec* set (this rank's owned elements, the
iteration space) and a *storage* set (owned elements followed by halo
imports — what dats are allocated on).  Declaration calls are collective:
every rank must declare the same sets/maps/dats in the same order (the
halo negotiation allgathers import requests).  Declare all maps of a set
before its dats, since maps grow the halo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ops.access import Access
from ..simmpi.comm import Communicator
from .mesh import Dat, Map, Set
from .parloop import Arg, Op2Context

__all__ = ["DistOp2Context"]


@dataclass
class _LocalSet:
    """Localization of one global set on one rank."""

    gset: Set
    exec_set: Set  # owned elements: the iteration space
    storage_set: Set  # owned + halo: what dats live on
    parts: np.ndarray  # global element -> owner rank
    owned: np.ndarray  # global ids of owned elements
    halo: np.ndarray  # global ids of imported elements (storage order)
    g2l: dict[int, int]
    imports: dict[int, np.ndarray] = field(default_factory=dict)  # src -> local idx
    exports: dict[int, np.ndarray] = field(default_factory=dict)  # dst -> local idx
    has_dats: bool = False

    @property
    def n_owned(self) -> int:
        return len(self.owned)


class DistOp2Context(Op2Context):
    """Owner-compute distributed execution of OP2 loops (module docstring)."""

    def __init__(
        self,
        comm: Communicator,
        partitions: dict[str, np.ndarray] | None = None,
        mode: str = "seq",
        timing=None,
    ) -> None:
        super().__init__(mode=mode, timing=timing)
        self.comm = comm
        self.partitions = dict(partitions or {})
        self._locals: dict[int, _LocalSet] = {}  # by id(global set)
        self._dats: dict[int, tuple[Dat, _LocalSet]] = {}  # by id(local dat)
        self._dirty: set[int] = set()
        #: Dats whose halo rows currently mirror owner values (filled by
        #: initialization or a read-exchange) rather than being zeroed
        #: increment scratch.
        self._halo_filled: set[int] = set()

    # ---- declaration factories ---------------------------------------

    def set(self, name: str, size: int) -> Set:
        gset = Set(name, size)
        parts = self.partitions.get(name)
        if parts is None:
            parts = np.minimum(
                np.arange(size) * self.comm.size // max(size, 1),
                self.comm.size - 1,
            )
        parts = np.asarray(parts, dtype=np.int64)
        if parts.shape != (size,):
            raise ValueError(f"partition for set {name!r} must have {size} entries")
        if parts.size and (parts.min() < 0 or parts.max() >= self.comm.size):
            raise ValueError(f"partition for set {name!r} names invalid ranks")
        owned = np.nonzero(parts == self.comm.rank)[0]
        ls = _LocalSet(
            gset=gset,
            exec_set=Set(name, len(owned)),
            storage_set=Set(name + "+halo", len(owned)),
            parts=parts,
            owned=owned,
            halo=np.empty(0, dtype=np.int64),
            g2l={int(g): i for i, g in enumerate(owned)},
        )
        self._locals[id(gset)] = ls
        return gset

    def map(self, name: str, from_set: Set, to_set: Set, values: np.ndarray) -> Map:
        values = np.asarray(values, dtype=np.int64)
        if values.ndim == 1:
            values = values[:, None]
        src = self._require_local(from_set, name)
        dst = self._require_local(to_set, name)
        if values.shape[0] != from_set.size:
            raise ValueError(f"map {name!r}: values must have {from_set.size} rows")
        needed = np.unique(values[src.owned].reshape(-1)) if src.owned.size else np.empty(0, np.int64)
        missing = np.array([g for g in needed if int(g) not in dst.g2l], dtype=np.int64)
        # Collective: every rank participates in the halo negotiation even
        # when it has nothing new to import.
        self._extend_halo(dst, missing)
        if src.owned.size:
            lookup = dst.g2l
            local_vals = np.array(
                [[lookup[int(g)] for g in row] for row in values[src.owned]],
                dtype=np.int64,
            )
        else:
            local_vals = np.empty((0, values.shape[1]), dtype=np.int64)
        return Map(name, src.exec_set, dst.storage_set, local_vals)

    def dat(self, dset: Set, dim: int, name: str, dtype=np.float64,
            data: np.ndarray | None = None) -> Dat:
        ls = self._require_local(dset, name)
        ls.has_dats = True
        local = Dat(ls.storage_set, dim, name, dtype)
        self.state_bytes += ls.gset.size * dim * local.dtype_bytes
        if data is not None:
            data = np.asarray(data, dtype=local.dtype)
            if data.ndim == 1:
                data = data[:, None]
            if data.shape[0] != ls.gset.size:
                raise ValueError(f"dat {name!r}: global data must have {ls.gset.size} rows")
            idx = np.concatenate([ls.owned, ls.halo]).astype(np.int64)
            local.data[...] = data[idx]
            self._halo_filled.add(id(local))
        self._dats[id(local)] = (local, ls)
        return local

    def _require_local(self, gset: Set, what: str) -> _LocalSet:
        try:
            return self._locals[id(gset)]
        except KeyError:
            raise ValueError(
                f"{what!r}: set {gset.name!r} was not declared through this context"
            ) from None

    def _extend_halo(self, ls: _LocalSet, new_globals: np.ndarray) -> None:
        if ls.has_dats and new_globals.size:
            raise RuntimeError(
                f"set {ls.gset.name!r}: declare all maps before dats "
                "(a later map would grow the halo under existing dats)"
            )
        start = ls.storage_set.size
        ls.halo = np.concatenate([ls.halo, new_globals])
        for i, g in enumerate(new_globals):
            ls.g2l[int(g)] = start + i
        ls.storage_set.size = ls.n_owned + len(ls.halo)
        self._rebuild_exchange_lists(ls)

    def _rebuild_exchange_lists(self, ls: _LocalSet) -> None:
        # imports: halo elements grouped by owner, ordered by global id so
        # they align with the owner's (also global-id-ordered) exports.
        ls.imports = {}
        order = np.argsort(ls.halo, kind="stable")
        for i in order:
            owner = int(ls.parts[ls.halo[i]])
            ls.imports.setdefault(owner, []).append(ls.n_owned + int(i))
        ls.imports = {r: np.asarray(v, dtype=np.int64) for r, v in ls.imports.items()}
        # Every rank announces the globals it imports (collective).
        wanted = self.comm.allgather(sorted(int(g) for g in ls.halo))
        ls.exports = {}
        for r, want in enumerate(wanted):
            if r == self.comm.rank:
                continue
            mine = [ls.g2l[g] for g in want if int(ls.parts[g]) == self.comm.rank]
            if mine:
                ls.exports[r] = np.asarray(mine, dtype=np.int64)

    # ---- hooks into the base executor ------------------------------------

    def _resolve_iterset(self, iterset: Set) -> Set:
        ls = self._locals.get(id(iterset))
        return ls.exec_set if ls is not None else iterset

    def _direct_set_ok(self, dat: Dat, iterset: Set) -> bool:
        # Direct dats live on the storage set whose owned prefix is the
        # exec set; matching names identify the pair.
        return dat.set.name == iterset.name + "+halo" or dat.set is iterset

    # ---- halo coherence -------------------------------------------------

    def _exchange_halo(self, dat: Dat) -> None:
        """Import fresh owned values from neighbor ranks into halo rows."""
        _, ls = self._dats[id(dat)]
        reqs = [(src, self.comm.irecv(src, tag=101)) for src in sorted(ls.imports)]
        for dst in sorted(ls.exports):
            self.comm.isend(dat.data[ls.exports[dst]], dst, tag=101)
        for src, req in reqs:
            dat.data[ls.imports[src]] = self.comm.wait(req)
        self._halo_filled.add(id(dat))

    def _flush_increments(self, dat: Dat, assign: bool = False) -> None:
        """Send halo-row contributions back to their owners (add, or
        assign for indirect writes) and clear the local halo rows."""
        _, ls = self._dats[id(dat)]
        reqs = [(src, self.comm.irecv(src, tag=102)) for src in sorted(ls.exports)]
        for dst in sorted(ls.imports):
            self.comm.isend(dat.data[ls.imports[dst]], dst, tag=102)
            dat.data[ls.imports[dst]] = 0.0
        self._halo_filled.discard(id(dat))
        for src, req in reqs:
            vals = self.comm.wait(req)
            if assign:
                dat.data[ls.exports[src]] = vals
            else:
                dat.data[ls.exports[src]] += vals

    # ---- execution ------------------------------------------------------

    def par_loop(self, kernel, name: str, iterset: Set, *args: Arg,
                 flops_per_elem: float = 0.0) -> None:
        for a in args:
            # Refresh halos for indirect READ/RW arguments.  INC must NOT
            # import: its halo rows are zero-initialized accumulators, and
            # importing owner values would double-count them at the next
            # flush (OP2's exec-halo works the same way).
            if (
                a.is_indirect
                and a.access in (Access.READ, Access.RW)
                and id(a.dat) in self._dirty
            ):
                self._exchange_halo(a.dat)
                self._dirty.discard(id(a.dat))
        for a in args:
            # INC halo rows are accumulation scratch: zero them if a read
            # exchange (or initialization) left owner copies there, else
            # the flush would return those values to their owner twice.
            if (
                a.is_indirect
                and a.access is Access.INC
                and id(a.dat) in self._halo_filled
            ):
                _, ls = self._dats[id(a.dat)]
                a.dat.data[ls.n_owned:] = 0.0
                self._halo_filled.discard(id(a.dat))
        super().par_loop(kernel, name, iterset, *args, flops_per_elem=flops_per_elem)
        for a in args:
            if a.is_indirect and a.access is Access.INC:
                self._flush_increments(a.dat)
                self._dirty.add(id(a.dat))
            elif a.is_indirect and a.access.writes:
                self._flush_increments(a.dat, assign=True)
                self._dirty.add(id(a.dat))
            elif a.dat is not None and a.access.writes:
                self._dirty.add(id(a.dat))

    def _finish_global(self, a: Arg, buf: np.ndarray) -> None:
        if a.access is Access.READ:
            return
        op = {"inc": "sum", "min": "min", "max": "max"}[a.access.value]
        total = self.comm.allreduce(buf, op=op)
        if a.access is Access.INC:
            a.glob.value += total
        elif a.access is Access.MIN:
            np.minimum(a.glob.value, total, out=a.glob.value)
        else:
            np.maximum(a.glob.value, total, out=a.glob.value)
        self.reduction_count += 1

    # ---- verification helpers -------------------------------------------

    def gather_dat(self, dat: Dat) -> np.ndarray | None:
        """Assemble the global owned values of a dat on rank 0."""
        _, ls = self._dats[id(dat)]
        pieces = self.comm.gather((ls.owned, dat.data[: ls.n_owned].copy()), root=0)
        if pieces is None:
            return None
        out = np.zeros((ls.gset.size, dat.dim), dtype=dat.dtype)
        for owned, chunk in pieces:
            out[owned] = chunk
        return out
