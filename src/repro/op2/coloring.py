"""Greedy coloring of iteration sets for race-free shared-memory execution.

"For OpenMP and SYCL one needs to explicitly avoid race conditions — for
which we use a coloring scheme" (paper Sec. 4, citing Reguly et al., ISC
2021).  Two elements conflict when they write (through any map slot of
any INC/WRITE argument) to the same target element; same-color elements
are then guaranteed conflict-free and can execute concurrently with plain
scatters.

The greedy first-fit algorithm processes elements in order and assigns
each the smallest color not used by a conflicting element — the standard
OP2 plan construction.

Maps are assumed non-degenerate (an element does not list the same
target twice); colored execution, like real OP2 plans, would lose
increments on repeated targets within one element.
"""

from __future__ import annotations

import numpy as np

from .mesh import Map, Set

__all__ = ["color_iterset", "validate_coloring"]


def color_iterset(iterset: Set, maps: tuple[tuple[Map, int | None], ...]) -> np.ndarray:
    """Color ``iterset`` so no two same-color elements share a write target.

    ``maps`` lists the (map, slot) pairs of the loop's indirect write
    arguments; ``slot=None`` means all of the map's slots.  Returns an
    int array of colors, one per element.
    """
    n = iterset.size
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0 or not maps:
        return np.zeros(n, dtype=np.int64)

    # Gather the write-target lists per element.
    target_cols = []
    offset = 0
    offsets = {}
    for m, slot in maps:
        if id(m.to_set) not in offsets:
            offsets[id(m.to_set)] = offset
            offset += m.to_set.size
        base = offsets[id(m.to_set)]
        if slot is None:
            target_cols.append(m.values + base)
        else:
            target_cols.append(m.values[:, slot : slot + 1] + base)
    targets = np.concatenate(target_cols, axis=1)

    # last_color_mask[t] = bitmask of colors used by elements targeting t.
    masks = np.zeros(offset, dtype=np.int64)
    for e in range(n):
        used = 0
        for t in targets[e]:
            used |= masks[t]
        c = 0
        while used & (1 << c):
            c += 1
            if c >= 63:
                raise RuntimeError("more than 62 colors needed; mesh degenerate?")
        colors[e] = c
        bit = 1 << c
        for t in targets[e]:
            masks[t] |= bit
    return colors


def validate_coloring(
    colors: np.ndarray, maps: tuple[tuple[Map, int | None], ...]
) -> bool:
    """Check that no two same-color elements share a write target,
    including conflicts between different maps into the same set."""
    by_set: dict[int, list[np.ndarray]] = {}
    for m, slot in maps:
        vals = m.values if slot is None else m.values[:, slot : slot + 1]
        by_set.setdefault(id(m.to_set), []).append(vals)
    for cols in by_set.values():
        targets = np.concatenate(cols, axis=1)
        for c in np.unique(colors):
            elems = np.nonzero(colors == c)[0]
            flat = targets[elems].reshape(-1)
            if len(np.unique(flat)) != flat.size:
                return False
    return True
