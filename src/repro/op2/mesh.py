"""Sets, maps and dats: the OP2 unstructured-mesh data model.

An unstructured computation is described by:

- :class:`Set` — a collection of mesh entities (nodes, edges, cells);
- :class:`Map` — a fixed-arity connectivity from one set to another
  (edge → its two nodes, cell → its vertices);
- :class:`Dat` — data on a set, ``dim`` components per element.

These mirror ``op_set`` / ``op_map`` / ``op_dat`` of OP2 (Mudalige &
Reguly et al.); the parallel-loop machinery lives in
:mod:`repro.op2.parloop`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Set", "Map", "Dat", "Global"]


class Set:
    """A set of mesh entities, identified by 0..size-1."""

    def __init__(self, name: str, size: int) -> None:
        if size < 0:
            raise ValueError("set size cannot be negative")
        self.name = name
        self.size = int(size)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Set {self.name} size={self.size}>"


class Map:
    """Fixed-arity connectivity from ``from_set`` to ``to_set``.

    ``values`` has shape ``(from_set.size, arity)``; entry ``[e, k]`` is
    the k-th target element of source element ``e``.
    """

    def __init__(self, name: str, from_set: Set, to_set: Set, values: np.ndarray) -> None:
        values = np.ascontiguousarray(values, dtype=np.int64)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2 or values.shape[0] != from_set.size:
            raise ValueError(
                f"map {name!r}: values must be ({from_set.size}, arity), got {values.shape}"
            )
        if values.size and (values.min() < 0 or values.max() >= to_set.size):
            raise ValueError(f"map {name!r}: target indices out of range")
        self.name = name
        self.from_set = from_set
        self.to_set = to_set
        self.values = values

    @property
    def arity(self) -> int:
        return self.values.shape[1]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Map {self.name} {self.from_set.name}->{self.to_set.name} "
            f"arity={self.arity}>"
        )


class Dat:
    """Data on a set: ``dim`` components per element, float32/float64."""

    def __init__(self, dset: Set, dim: int, name: str, dtype=np.float64,
                 data: np.ndarray | None = None) -> None:
        if dim < 1:
            raise ValueError("dat dim must be >= 1")
        self.set = dset
        self.dim = int(dim)
        self.name = name
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dats are float32 or float64")
        if data is None:
            self.data = np.zeros((dset.size, dim), dtype=self.dtype)
        else:
            data = np.asarray(data, dtype=self.dtype)
            if data.ndim == 1:
                data = data[:, None]
            if data.shape != (dset.size, dim):
                raise ValueError(
                    f"dat {name!r}: data must be ({dset.size}, {dim}), got {data.shape}"
                )
            self.data = data.copy()

    @property
    def dtype_bytes(self) -> int:
        return self.dtype.itemsize

    def copy(self, name: str | None = None) -> "Dat":
        return Dat(self.set, self.dim, name or f"{self.name}_copy", self.dtype, self.data)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Dat {self.name} on {self.set.name} dim={self.dim} {self.dtype}>"


class Global:
    """A global value for reductions / read-only parameters."""

    def __init__(self, value, name: str = "global") -> None:
        self.name = name
        self.value = np.atleast_1d(np.asarray(value, dtype=np.float64))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Global {self.name} {self.value!r}>"
