"""Checkpoint/restart for unstructured-mesh applications.

Mirrors :mod:`repro.ops.checkpoint` for OP2 dats: serial contexts save
whole dats; distributed contexts save each rank's owned rows plus the
global ids so a restart with the same partitioning restores exactly.
"""

from __future__ import annotations

import os

import numpy as np

from .halo import DistOp2Context
from .mesh import Dat
from .parloop import Op2Context

__all__ = ["save_dats", "load_dats"]


def _shard(path: str, ctx) -> str:
    if isinstance(ctx, DistOp2Context):
        base, ext = os.path.splitext(path)
        return f"{base}.rank{ctx.comm.rank}{ext}"
    return path


def save_dats(path: str, ctx: Op2Context, dats: list[Dat]) -> str:
    """Write the dats (owned rows in distributed mode) to ``path``."""
    if not dats:
        raise ValueError("nothing to checkpoint")
    arrays = {}
    for d in dats:
        if isinstance(ctx, DistOp2Context):
            _, ls = ctx._dats[id(d)]
            arrays[f"dat_{d.name}"] = d.data[: ls.n_owned]
            arrays[f"owned_{d.name}"] = ls.owned
            arrays[f"gsize_{d.name}"] = np.asarray(ls.gset.size)
        else:
            arrays[f"dat_{d.name}"] = d.data
            arrays[f"gsize_{d.name}"] = np.asarray(d.set.size)
    target = _shard(path, ctx)
    np.savez_compressed(target, **arrays)
    return target


def load_dats(path: str, ctx: Op2Context, dats: list[Dat]) -> None:
    """Restore dats saved by :func:`save_dats`; distributed restarts must
    use the same partitioning (validated via the stored global ids)."""
    if not dats:
        raise ValueError("nothing to restore")
    target = _shard(path, ctx)
    with np.load(target, allow_pickle=False) as f:
        for d in dats:
            key = f"dat_{d.name}"
            if key not in f:
                raise KeyError(f"checkpoint has no dat named {d.name!r}")
            if isinstance(ctx, DistOp2Context):
                _, ls = ctx._dats[id(d)]
                if int(f[f"gsize_{d.name}"]) != ls.gset.size:
                    raise ValueError(f"{d.name}: set size changed since checkpoint")
                if not np.array_equal(f[f"owned_{d.name}"], ls.owned):
                    raise ValueError(f"{d.name}: partitioning changed since checkpoint")
                d.data[: ls.n_owned] = f[key]
                ctx._dirty.add(id(d))  # halos must be re-imported
            else:
                if int(f[f"gsize_{d.name}"]) != d.set.size:
                    raise ValueError(f"{d.name}: set size changed since checkpoint")
                d.data[...] = f[key]
