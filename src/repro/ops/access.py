"""Access descriptors for structured-mesh parallel loops.

Every argument of an OPS-style ``par_loop`` declares *how* the kernel
touches its dataset.  The DSL uses the descriptors for three things:

1. halo management — a READ with a non-trivial stencil needs fresh ghost
   cells; any WRITE dirties them;
2. traffic accounting — the per-loop byte counts behind Figure 8 are
   "estimated ... based on the iteration ranges, datasets accessed, and
   types of access (read or read+write)" (paper Sec. 6): one transfer per
   point per READ or WRITE, two for RW/INC;
3. correctness checking — kernels cannot write through READ accessors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..ir.access import Access

if TYPE_CHECKING:  # pragma: no cover
    from .block import Dat
    from .stencil import Stencil

__all__ = ["Access", "ArgDat", "ArgGbl", "arg_dat", "arg_gbl"]


@dataclass(frozen=True)
class ArgDat:
    """A dataset argument: which dat, through which stencil, how."""

    dat: "Dat"
    stencil: "Stencil"
    access: Access

    def __post_init__(self) -> None:
        if self.access in (Access.MIN, Access.MAX):
            raise ValueError("MIN/MAX access is for global reductions (arg_gbl)")
        if self.access is Access.WRITE and len(self.stencil.points) != 1:
            # OPS restriction: pure writes go through the identity stencil
            # so ownership of written points is unambiguous.  RW/INC may
            # read through a wider stencil; their writes are still
            # restricted to offset 0 by the accessor.
            raise ValueError(
                f"write access to {self.dat.name!r} must use a single-point stencil"
            )
        if self.stencil.ndim != self.dat.block.ndim:
            raise ValueError(
                f"stencil dimensionality {self.stencil.ndim} does not match "
                f"block {self.dat.block.name!r} ({self.dat.block.ndim}D)"
            )


@dataclass
class ArgGbl:
    """A global (scalar/small-array) argument, possibly a reduction."""

    value: np.ndarray
    access: Access

    def __post_init__(self) -> None:
        self.value = np.atleast_1d(np.asarray(self.value))
        if self.access is Access.RW:
            raise ValueError("globals support READ, INC, MIN, MAX")


def arg_dat(dat: "Dat", stencil: "Stencil", access: Access) -> ArgDat:
    """Declare a dataset argument of a par_loop."""
    return ArgDat(dat, stencil, access)


def arg_gbl(value: np.ndarray, access: Access = Access.READ) -> ArgGbl:
    """Declare a global argument (READ) or reduction target (INC/MIN/MAX)."""
    return ArgGbl(value, access)
