"""Structured blocks and datasets (the OPS ``ops_block`` / ``ops_dat``).

A :class:`Block` is a global N-d index space, possibly decomposed over the
ranks of a simulated-MPI world; a :class:`Dat` is a field on a block,
stored locally with ghost ("halo") padding.  Halo coherence is tracked per
dat: any write dirties the halos, and a read through a non-trivial stencil
triggers an exchange (in distributed mode) before the loop runs — the
"ghost cell exchanges triggered as needed before each bulk parallel
computational step" of the paper's Section 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..simmpi.cart import CartGrid, local_range

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import OpsContext

__all__ = ["Block", "Dat"]


class Block:
    """A global structured index space.

    Created through :meth:`repro.ops.runtime.OpsContext.block`.  In
    distributed mode the context supplies a Cartesian process grid; the
    block computes this rank's owned slab of every dimension.
    """

    def __init__(self, ctx: "OpsContext", name: str, shape: tuple[int, ...]) -> None:
        if not shape or any(n < 1 for n in shape):
            raise ValueError("block shape must be positive in every dimension")
        self.ctx = ctx
        self.name = name
        self.shape = tuple(int(n) for n in shape)
        self.dats: list[Dat] = []
        if ctx.grid is not None:
            if ctx.grid.ndims != len(shape):
                raise ValueError("process grid dimensionality must match block")
            coords = ctx.grid.coords(ctx.comm.rank)
            self.owned = tuple(
                local_range(self.shape[d], ctx.grid.dims[d], coords[d])
                for d in range(self.ndim)
            )
        else:
            self.owned = tuple((0, n) for n in self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def local_shape(self) -> tuple[int, ...]:
        return tuple(e - s for s, e in self.owned)

    @property
    def interior(self) -> list[tuple[int, int]]:
        """The full-interior iteration range (global coordinates)."""
        return [(0, n) for n in self.shape]

    def extended(self, depth: int) -> list[tuple[int, int]]:
        """Interior plus ``depth`` ghost layers on every side."""
        return [(-depth, n + depth) for n in self.shape]

    def dat(
        self,
        name: str,
        halo: int = 0,
        dtype=np.float64,
        init: float | np.ndarray | None = 0.0,
    ) -> "Dat":
        """Allocate a field on this block with ``halo`` ghost layers."""
        d = Dat(self, name, halo, dtype, init)
        self.dats.append(d)
        interior = 1
        for n in self.shape:
            interior *= n
        self.ctx.state_bytes += interior * d.dtype_bytes
        return d

    def owned_extended(self, halo: int) -> tuple[tuple[int, int], ...]:
        """This rank's owned range, extended into the *physical* halo at
        true domain boundaries (ghosts owned by neighbors are excluded)."""
        out = []
        for d, (s, e) in enumerate(self.owned):
            lo = s - halo if s == 0 else s
            hi = e + halo if e == self.shape[d] else e
            out.append((lo, hi))
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Block {self.name} {self.shape} owned={self.owned}>"


class Dat:
    """A field on a block, stored with halo padding.

    ``data`` is the raw local array (interior + 2*halo per dimension);
    ``interior`` is the view of owned points.  Index arithmetic between
    global and local coordinates lives here: local = global - owned_start
    + halo.
    """

    def __init__(
        self,
        block: Block,
        name: str,
        halo: int,
        dtype,
        init: float | np.ndarray | None,
    ) -> None:
        if halo < 0:
            raise ValueError("halo depth cannot be negative")
        self.block = block
        self.name = name
        self.halo = halo
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dats are float32 or float64")
        shape = tuple(n + 2 * halo for n in block.local_shape)
        self.data = np.zeros(shape, dtype=self.dtype)
        if init is not None and not (np.isscalar(init) and init == 0.0):
            self.interior[...] = init
        #: Ghost layers out of date with neighbor interiors?
        self.halo_dirty = True

    @property
    def interior(self) -> np.ndarray:
        """View of the owned (non-ghost) points."""
        if self.halo == 0:
            return self.data
        sl = tuple(slice(self.halo, -self.halo) for _ in range(self.block.ndim))
        return self.data[sl]

    @property
    def dtype_bytes(self) -> int:
        return self.dtype.itemsize

    def local_index(self, global_idx: tuple[int, ...]) -> tuple[int, ...]:
        """Translate global coordinates to indices into ``data``."""
        out = []
        for d, g in enumerate(global_idx):
            s, e = self.block.owned[d]
            loc = g - s + self.halo
            if not (0 <= loc < self.data.shape[d]):
                raise IndexError(
                    f"{self.name}: global index {g} (dim {d}) outside local "
                    f"storage (owned [{s},{e}), halo {self.halo})"
                )
            out.append(loc)
        return tuple(out)

    def set_from_global(self, global_array: np.ndarray) -> None:
        """Fill the owned interior from a global array (tests/examples)."""
        self.block.ctx.flush()  # queued loops must see the old values
        if global_array.shape != self.block.shape:
            raise ValueError("global array shape mismatch")
        sl = tuple(slice(s, e) for s, e in self.block.owned)
        self.interior[...] = global_array[sl]
        self.halo_dirty = True

    def gather_global(self) -> np.ndarray | None:
        """Assemble the global interior on rank 0 (None on other ranks);
        serial contexts return a copy directly.  Forces any lazily queued
        (tiled) loops to execute first."""
        ctx = self.block.ctx
        ctx.flush()
        if ctx.comm is None:
            return self.interior.copy()
        pieces = ctx.comm.gather((self.block.owned, self.interior.copy()), root=0)
        if pieces is None:
            return None
        out = np.zeros(self.block.shape, dtype=self.dtype)
        for owned, chunk in pieces:
            sl = tuple(slice(s, e) for s, e in owned)
            out[sl] = chunk
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Dat {self.name} on {self.block.name} halo={self.halo} {self.dtype}>"
