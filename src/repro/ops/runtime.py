"""The OPS-like runtime: contexts, loop execution, accounting, timing.

:class:`OpsContext` is the entry point of the structured-mesh DSL.  It
runs in three modes:

* **serial** (default) — the whole domain on one "rank"; loops execute
  directly and the context records per-loop byte/flop profiles (the data
  the performance model consumes);
* **distributed** — created with a simulated-MPI communicator and a
  Cartesian process grid; every rank owns a slab, reads through stencils
  trigger halo exchanges, and global reductions go through allreduce.
  Results are bitwise identical to serial execution;
* **tiled** (serial only) — loops are queued and executed in cache-sized
  skewed tiles over the outermost dimension (the OPS lazy-execution
  cache-blocking scheme of Figure 9); see :mod:`repro.ops.tiling`.

Optionally a :class:`TimingModel` attaches simulated kernel time to each
loop (per-rank share of the modeled node time), so a distributed run
reproduces compute/MPI time splits on a virtual platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..ir.executor import InstrumentedExecutor
from ..ir.ledger import LoopTraffic
from ..ir.plan import KernelPlan
from ..machine.config import RunConfig
from ..machine.spec import PlatformSpec
from ..perfmodel.kernelmodel import AppClass, AppSpec, LoopSpec
from ..simmpi.cart import CartGrid, exchange_halos
from ..simmpi.comm import Communicator
from .access import Access, ArgDat, ArgGbl
from .block import Block, Dat
from .parloop import DatAccessor, GblAccessor, execution_view, lower_access

__all__ = ["LoopRecord", "TimingModel", "OpsContext"]

#: Accumulated execution profile of one named loop — absorbed into the
#: DSL-neutral :class:`~repro.ir.ledger.LoopTraffic`; the name remains
#: for the DSL-facing API.
LoopRecord = LoopTraffic


@dataclass(frozen=True)
class TimingModel:
    """Attach modeled kernel times to loop executions.

    ``klass`` selects the configuration-effect behaviour; the app spec
    used internally is a minimal stand-in built per loop.
    """

    platform: PlatformSpec
    config: RunConfig
    klass: AppClass = AppClass.STRUCTURED_BW
    dtype_bytes: int = 8

    def rank_time(self, spec: LoopSpec, ndims: int, nranks: int) -> float:
        """Per-rank kernel time for this rank's local share."""
        from ..perfmodel.roofline import loop_time

        app = AppSpec(
            name="_timing",
            klass=self.klass,
            dtype_bytes=self.dtype_bytes,
            iterations=1,
            loops=(spec,),
            domain=(1,) * ndims,
        )
        node = loop_time(spec.scaled(max(nranks, 1)), app, self.platform, self.config)
        core = (node.time - node.overhead) / max(nranks, 1)
        return core + node.overhead


class OpsContext:
    """Runtime context of the structured-mesh DSL (see module docstring).

    Parameters
    ----------
    comm, grid:
        Simulated-MPI communicator and matching Cartesian process grid for
        distributed execution; both None for serial.
    timing:
        Optional :class:`TimingModel`; loop executions then advance the
        communicator's virtual clock (distributed) or accumulate in
        :attr:`simulated_time` (serial).
    tile:
        Optional :class:`repro.ops.tiling.TilePlan` enabling lazy tiled
        execution (serial only).
    """

    def __init__(
        self,
        comm: Communicator | None = None,
        grid: CartGrid | None = None,
        timing: TimingModel | None = None,
        tile=None,
    ) -> None:
        if (comm is None) != (grid is None):
            raise ValueError("distributed mode needs both comm and grid")
        if comm is not None and grid.size != comm.size:
            raise ValueError("process grid size must equal communicator size")
        if tile is not None and comm is not None:
            raise ValueError("tiled execution is serial-only in this DSL")
        self.comm = comm
        self.grid = grid
        self.timing = timing
        self.tile = tile
        #: The shared instrumented execution path (traffic ledger, timing
        #: charge, span emission) — see :mod:`repro.ir.executor`.
        self._exec = InstrumentedExecutor(self, "ops")
        self.halo_exchange_count = 0
        self.halo_fields_exchanged = 0
        self.reduction_count = 0
        #: Total bytes of allocated field (dat) interiors — the reuse
        #: footprint of one pass over the loop chain.
        self.state_bytes = 0
        self._queue: list[dict] = []  # pending loops in tiled mode

    # ------------------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.comm.size if self.comm is not None else 1

    @property
    def records(self) -> dict[str, LoopRecord]:
        """Accumulated per-loop profiles (the executor's traffic ledger)."""
        return self._exec.ledger.records

    @property
    def loop_order(self) -> list[str]:
        """Loop names in first-execution order."""
        return self._exec.ledger.loop_order

    @property
    def simulated_time(self) -> float:
        """Accumulated modeled kernel seconds (serial timed runs)."""
        return self._exec.simulated_time

    def block(self, name: str, shape: tuple[int, ...]) -> Block:
        """Declare a global structured block."""
        return Block(self, name, shape)

    # ------------------------------------------------------------------

    def par_loop(
        self,
        kernel: Callable,
        name: str,
        block: Block,
        rng: Sequence[tuple[int, int]],
        *args: ArgDat | ArgGbl,
        flops_per_point: float = 0.0,
    ) -> None:
        """Execute (or enqueue, in tiled mode) one parallel loop.

        ``rng`` is the global iteration range, one ``(lo, hi)`` per block
        dimension; it may extend into the physical halo for boundary
        loops.  ``flops_per_point`` is the kernel author's flop count,
        recorded for the performance model.
        """
        if len(rng) != block.ndim:
            raise ValueError(f"loop {name!r}: range dimensionality mismatch")
        for a in args:
            if isinstance(a, ArgDat) and a.dat.block is not block:
                raise ValueError(f"loop {name!r}: dat {a.dat.name!r} on a different block")
            if isinstance(a, ArgDat) and a.access.reads and a.stencil.radius > a.dat.halo:
                raise ValueError(
                    f"loop {name!r}: stencil radius {a.stencil.radius} exceeds "
                    f"halo depth {a.dat.halo} of {a.dat.name!r}"
                )
        if self.tile is not None:
            # Lazy execution: READ globals must be captured *now* — the
            # caller may overwrite them (e.g. the per-iteration dt)
            # before the queue flushes.  This mirrors OPS, which copies
            # gbl read buffers at ops_par_loop time.
            args = tuple(
                ArgGbl(a.value.copy(), a.access)
                if isinstance(a, ArgGbl) and a.access is Access.READ
                else a
                for a in args
            )
        job = dict(
            kernel=kernel, name=name, block=block,
            rng=[tuple(r) for r in rng], args=args, flops=flops_per_point,
        )
        if self.tile is not None:
            has_reduction = any(isinstance(a, ArgGbl) and a.access is not Access.READ
                                for a in args)
            self._queue.append(job)
            if has_reduction:
                self.flush()
            return
        self._execute(job)

    def flush(self) -> None:
        """Execute any queued loops (tiled mode); no-op otherwise."""
        if not self._queue:
            return
        from .tiling import execute_tiled

        queue, self._queue = self._queue, []
        execute_tiled(self, queue, self.tile)

    # ------------------------------------------------------------------

    def _sync_halos(self, args: Sequence[ArgDat | ArgGbl], bulk: bool = True) -> None:
        """Exchange dirty halos read through non-trivial stencils.

        ``bulk`` marks loops spanning (most of) the interior; only those
        count toward the halo-exchange statistics the communication model
        consumes — tiny boundary-strip loops exchange for correctness but
        piggyback on the bulk exchanges in real OPS.
        """
        token = self._exec.begin()
        seen: set[int] = set()
        fields = 0
        exchanged: list[str] = []
        for a in args:
            if not isinstance(a, ArgDat):
                continue
            if not (a.access.reads and a.stencil.radius > 0 and a.dat.halo_dirty):
                continue
            if id(a.dat) in seen:
                continue
            seen.add(id(a.dat))
            fields += 1
            exchanged.append(a.dat.name)
            if self.comm is not None and self.grid.size > 1 and a.dat.halo > 0:
                exchange_halos(self.comm, self.grid, a.dat.data, a.dat.halo)
            a.dat.halo_dirty = False
        if fields and bulk:
            self.halo_exchange_count += 1
            self.halo_fields_exchanged += fields
        self._exec.halo_span(token, fields, tuple(exchanged), bulk)

    def _local_range(
        self, block: Block, rng: Sequence[tuple[int, int]], halo_needed: int
    ) -> list[tuple[int, int]] | None:
        """Intersect the global range with this rank's owned-extended
        region; None when empty."""
        owned = block.owned_extended(halo_needed)
        out = []
        for (lo, hi), (s, e) in zip(rng, owned):
            a, b = max(lo, s), min(hi, e)
            if a >= b:
                return None
            out.append((a, b))
        return out

    def _execute(self, job: dict, rng_override: list[tuple[int, int]] | None = None) -> None:
        block: Block = job["block"]
        args = job["args"]
        rng = rng_override if rng_override is not None else job["rng"]

        rng_points = 1
        for lo, hi in rng:
            rng_points *= max(hi - lo, 0)
        interior_points = 1
        for d in block.shape:
            interior_points *= d
        self._sync_halos(args, bulk=rng_points >= 0.5 * interior_points)
        token = self._exec.begin()

        # Halo reach of writes determines how far into physical ghosts the
        # range may extend on this rank.
        max_halo = max(
            (a.dat.halo for a in args if isinstance(a, ArgDat)), default=0
        )
        local = self._local_range(block, rng, max_halo)

        accessors: list[DatAccessor | GblAccessor] = []
        gbls: list[tuple[ArgGbl, GblAccessor]] = []
        npoints = 0
        if local is not None:
            npoints = int(np.prod([b - a for a, b in local]))
            for a in args:
                if isinstance(a, ArgDat):
                    base, extent = execution_view(a.dat, local)
                    accessors.append(DatAccessor(a, base, extent))
                else:
                    acc = GblAccessor(a)
                    accessors.append(acc)
                    if a.access is not Access.READ:
                        gbls.append((a, acc))
            job["kernel"](*accessors)
        else:
            # Ranks with no points still participate in reductions.
            for a in args:
                if isinstance(a, ArgGbl) and a.access is not Access.READ:
                    acc = GblAccessor(a)
                    gbls.append((a, acc))

        # Mark written halos dirty.
        for a in args:
            if isinstance(a, ArgDat) and a.access.writes:
                a.dat.halo_dirty = True

        self._finish_reductions(gbls)
        # Lower to the IR and hand off: the shared executor accounts the
        # traffic, charges the timing model and emits the kernel span.
        # Extents come from the *global* range, so tiled sub-ranges still
        # report the loop's true span to the spec builder.
        plan = KernelPlan(
            job["name"], "ops", npoints, lower_access(args),
            flops_per_point=job["flops"],
            ndims=block.ndim,
            extents=tuple(hi - lo for lo, hi in job["rng"]),
            rank=self.comm.rank if self.comm is not None else 0,
        )
        self._exec.finish(plan, token)

    def _finish_reductions(self, gbls: list[tuple[ArgGbl, GblAccessor]]) -> None:
        for arg, acc in gbls:
            contribution = acc.acc
            if self.comm is not None:
                op = {"inc": "sum", "min": "min", "max": "max"}[arg.access.value]
                contribution = self.comm.allreduce(contribution, op=op)
            if arg.access is Access.INC:
                arg.value += contribution
            elif arg.access is Access.MIN:
                np.minimum(arg.value, contribution, out=arg.value)
            else:
                np.maximum(arg.value, contribution, out=arg.value)
            self.reduction_count += 1

    # ------------------------------------------------------------------

    def loop_specs(
        self,
        iterations: int = 1,
        point_scale: float | tuple[float, ...] = 1.0,
        run_domain: tuple[int, ...] | None = None,
    ) -> list[LoopSpec]:
        """Convert the accumulated records to per-iteration
        :class:`~repro.perfmodel.kernelmodel.LoopSpec` inputs.

        ``iterations`` divides the accumulated totals (records are
        whole-run).  ``point_scale`` extrapolates a scaled-down run to
        the paper's problem size: a scalar multiplies every loop; a
        per-dimension tuple (with ``run_domain``) scales each loop only
        along dimensions its range actually spans — so boundary strips
        grow with the surface while bulk loops grow with the volume.
        """
        self.flush()
        return self._exec.ledger.loop_specs(iterations, point_scale, run_domain)
