"""Accessors and the execution engine of structured parallel loops.

Kernels are plain Python functions receiving one accessor per argument.
A dat accessor is indexed with *relative stencil offsets* and returns a
numpy view over the whole iteration range — so kernels are written
point-wise but execute vectorized:

    def advance(u_new, u, c):
        u_new[0, 0] = u[0, 0] + c[0] * (u[1, 0] + u[-1, 0] - 2 * u[0, 0])

Accessors enforce the declared access modes: reading through a WRITE-only
accessor, writing through READ, or using an offset outside the declared
stencil all raise immediately.  Global accessors expose ``.val`` for READ
and accumulate INC/MIN/MAX contributions for reductions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ir.access import AccessDescriptor, describe
from .access import Access, ArgDat, ArgGbl
from .block import Dat

__all__ = [
    "DatAccessor", "GblAccessor", "execution_view", "lower_access",
    "describe_access",
]


def lower_access(args) -> tuple[AccessDescriptor, ...]:
    """Lower structured-loop arguments to DSL-neutral IR descriptors.

    One :class:`~repro.ir.access.AccessDescriptor` per argument: dats
    carry their name, scalar element width and the stencil radius they
    are accessed through; globals lower to traffic-exempt ``"gbl"``
    entries.  Everything downstream of the engine — byte accounting,
    spec construction, trace access strings — consumes these, never the
    ``ArgDat``/``ArgGbl`` objects.
    """
    out = []
    for a in args:
        if isinstance(a, ArgDat):
            out.append(
                AccessDescriptor(
                    name=a.dat.name,
                    access=a.access,
                    width_bytes=a.dat.dtype_bytes,
                    dtype_bytes=a.dat.dtype_bytes,
                    radius=a.stencil.radius,
                )
            )
        else:
            out.append(AccessDescriptor(name="gbl", access=a.access, is_global=True))
    return tuple(out)


def describe_access(args) -> tuple[str, ...]:
    """Compact per-argument access summary for tracing/diagnostics.

    One entry per loop argument: ``"u:read/r1"`` (dat ``u``, READ through
    a radius-1 stencil) or ``"gbl:inc"`` for globals — the access-mode
    attribute the observability layer attaches to every kernel span.
    Kept as the DSL-facing name for :func:`repro.ir.access.describe`
    over the lowered arguments.
    """
    return describe(lower_access(args))


def _normalize_offset(offset, ndim: int) -> tuple[int, ...]:
    if isinstance(offset, (int, np.integer)):
        off = (int(offset),)
    else:
        off = tuple(int(o) for o in offset)
    if len(off) != ndim:
        raise IndexError(f"offset {offset!r} has wrong dimensionality (need {ndim})")
    return off


class DatAccessor:
    """Kernel-side handle for one dat argument over one iteration range."""

    __slots__ = ("_dat", "_arg", "_base", "_extent")

    def __init__(self, arg: ArgDat, base: tuple[int, ...], extent: tuple[int, ...]) -> None:
        self._dat = arg.dat
        self._arg = arg
        self._base = base
        self._extent = extent

    def _view(self, off: tuple[int, ...]) -> np.ndarray:
        idx = []
        for d, (b, o, n) in enumerate(zip(self._base, off, self._extent)):
            start = b + o
            if start < 0 or start + n > self._dat.data.shape[d]:
                raise IndexError(
                    f"{self._dat.name}: offset {off} reaches outside local "
                    f"storage in dim {d} (halo {self._dat.halo})"
                )
            idx.append(slice(start, start + n))
        return self._dat.data[tuple(idx)]

    def __getitem__(self, offset) -> np.ndarray:
        off = _normalize_offset(offset, self._dat.block.ndim)
        if off not in self._arg.stencil:
            raise IndexError(
                f"{self._dat.name}: offset {off} not in stencil "
                f"{self._arg.stencil.name}"
            )
        if not self._arg.access.reads and any(off):
            raise PermissionError(
                f"{self._dat.name} is WRITE-only; only offset 0 may be assigned"
            )
        if self._arg.access is Access.WRITE and not any(off):
            # Reading offset 0 of a WRITE arg returns the (about to be
            # overwritten) view so that ``a[0,0] = ...`` works via
            # __setitem__; direct reads of stale data are the kernel's
            # responsibility, as in OPS.
            return self._view(off)
        return self._view(off)

    def __setitem__(self, offset, value) -> None:
        off = _normalize_offset(offset, self._dat.block.ndim)
        if not self._arg.access.writes:
            raise PermissionError(f"{self._dat.name} is READ-only in this loop")
        if any(off):
            raise PermissionError(
                f"{self._dat.name}: writes must target offset 0 (got {off})"
            )
        # Plain assignment for every write mode: INC kernels use the
        # ``a[0,0] += x`` idiom, which reads the view, adds in a temporary
        # and assigns back — incrementing through __setitem__ here would
        # double-apply the increment.
        view = self._view(off)
        view[...] = value

    @property
    def extent(self) -> tuple[int, ...]:
        """Shape of the iteration range (for kernels needing coordinates)."""
        return self._extent


class GblAccessor:
    """Kernel-side handle for a global argument.

    READ: ``g.val`` is the (copied) value.  Reductions: ``g.acc`` is a
    zero/identity-initialized accumulator the kernel updates in place;
    the runtime combines accumulators across ranks afterwards.
    """

    __slots__ = ("_arg", "acc")

    def __init__(self, arg: ArgGbl) -> None:
        self._arg = arg
        if arg.access is Access.READ:
            self.acc = arg.value.copy()
            self.acc.setflags(write=False)
        elif arg.access is Access.INC:
            self.acc = np.zeros_like(arg.value)
        elif arg.access is Access.MIN:
            self.acc = np.full_like(arg.value, np.inf)
        elif arg.access is Access.MAX:
            self.acc = np.full_like(arg.value, -np.inf)
        else:  # pragma: no cover - rejected by ArgGbl
            raise ValueError(arg.access)

    @property
    def val(self) -> np.ndarray:
        return self.acc

    def __getitem__(self, idx):
        return self.acc[idx]

    def __setitem__(self, idx, value) -> None:
        if self._arg.access is Access.READ:
            raise PermissionError("global is READ-only in this loop")
        self.acc[idx] = value


def execution_view(
    dat: Dat, rng: Sequence[tuple[int, int]]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Translate a global-coordinate range to (base local index, extent)
    for one dat, validating that local storage covers it."""
    base = []
    extent = []
    for d, (lo, hi) in enumerate(rng):
        s, _ = dat.block.owned[d]
        b = lo - s + dat.halo
        n = hi - lo
        if b < 0 or b + n > dat.data.shape[d]:
            raise IndexError(
                f"{dat.name}: range [{lo},{hi}) (dim {d}) exceeds local "
                f"storage with halo {dat.halo}"
            )
        base.append(b)
        extent.append(n)
    return tuple(base), tuple(extent)
