"""Cache-blocking tiling: the OPS lazy-execution optimization (Figure 9).

The paper's final experiment applies OPS's run-time loop-chain tiling to
CloverLeaf 2D: "this algorithm re-arranges the execution of parallel
loops within and across different loops to improve memory locality"
(Sec. 6, citing Reguly et al., TPDS 2017).

Two pieces live here:

* :func:`execute_tiled` — the real transformation.  Queued loops are
  executed in *skewed tiles* over the outermost dimension: tile ``t``
  runs loop ``j`` on rows ``[t - S_j, t + W - S_j)`` where the skew
  ``S_j`` is the accumulated read radius of the chain up to loop ``j``.
  Every point of every loop executes exactly once (so INC arguments are
  safe) and all data dependencies are satisfied within the sweep, making
  the result bitwise identical to untiled execution — tests assert this.

* :class:`TiledChainModel` — the analytic traffic/time model the Figure 9
  benchmark uses: per tile, the chain's unique footprint is fetched from
  memory once and the remaining traffic is served at cache bandwidth,
  which is why the tiling speedup tracks each platform's cache:memory
  bandwidth ratio (1.84x at 3.8x on the Xeon MAX, 2.7x at 6.3x on the
  8360Y, 4x at 14x on the EPYC).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.config import RunConfig
from ..machine.spec import PlatformSpec
from ..mem.hierarchy import HierarchyModel, Scope
from ..perfmodel import calibration as cal
from ..perfmodel.configmodel import app_memory_bandwidth, loop_overhead
from ..perfmodel.kernelmodel import AppSpec
from .access import ArgDat

__all__ = ["TilePlan", "execute_tiled", "TiledChainModel"]


@dataclass(frozen=True)
class TilePlan:
    """Tiling parameters: tile width (rows of the outermost dimension)."""

    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("tile width must be >= 1")


def _read_radius(args) -> int:
    return max(
        (a.stencil.radius for a in args if isinstance(a, ArgDat) and a.access.reads),
        default=0,
    )


def execute_tiled(ctx, queue: list[dict], plan: TilePlan) -> None:
    """Execute a queued loop chain in skewed tiles (see module docstring).

    ``ctx`` is the owning :class:`~repro.ops.runtime.OpsContext`; loops
    run through its normal ``_execute`` path with a restricted row range,
    so accounting, reductions and access checking all behave as usual.
    """
    if not queue:
        return
    # Skews: S_0 = 0, S_j = S_{j-1} + max(r_1..r_j).  Using the prefix
    # maximum of the read radii (rather than r_j alone) satisfies both
    # flow dependencies (loop j reads what loop i<j wrote: needs
    # S_j >= S_i + r_j) and anti-dependencies (loop j overwrites what
    # loop i<j read: needs S_j >= S_i + r_i).
    skews = [0]
    rmax = _read_radius(queue[0]["args"])
    for job in queue[1:]:
        rmax = max(rmax, _read_radius(job["args"]))
        skews.append(skews[-1] + rmax)
    lo_all = min(job["rng"][0][0] for job in queue)
    hi_all = max(job["rng"][0][1] + s for job, s in zip(queue, skews))
    w = plan.width
    t = lo_all
    while t < hi_all:
        for job, s in zip(queue, skews):
            lo_j, hi_j = job["rng"][0]
            a = max(lo_j, t - s)
            b = min(hi_j, t + w - s)
            if a >= b:
                continue
            rng = [(a, b)] + list(job["rng"][1:])
            ctx._execute(job, rng_override=rng)
        t += w


class TiledChainModel:
    """Analytic per-iteration time of a tiled vs. untiled loop chain.

    Parameters
    ----------
    app:
        The application spec (its loops define the chain; one iteration).
    unique_bytes_per_point:
        Distinct field bytes per grid point the chain touches (the tile
        footprint per point) — each fetched from memory once per tile
        sweep instead of once per loop.
    redundancy:
        Extra work fraction from skew overlap and the redundant halo-region
        computation the paper notes ("at the cost of redundant computations
        along the MPI boundaries").
    """

    def __init__(
        self,
        app: AppSpec,
        platform: PlatformSpec,
        config: RunConfig,
        unique_bytes_per_point: float,
        redundancy: float = 0.10,
        hierarchy: HierarchyModel | None = None,
    ) -> None:
        if unique_bytes_per_point <= 0:
            raise ValueError("unique_bytes_per_point must be positive")
        self.app = app
        self.platform = platform
        self.config = config
        self.unique_bpp = unique_bytes_per_point
        self.redundancy = redundancy
        self.hm = hierarchy or HierarchyModel(platform)

    def _chain_bpp(self) -> float:
        pts = max(l.points for l in self.app.loops)
        return sum(l.bytes_total for l in self.app.loops) / pts

    def tile_points(self, llc_fraction: float = 0.5) -> float:
        """Points per tile so the footprint fills ``llc_fraction`` of the
        last-level cache."""
        llc = self.platform.cache_capacity_total(self.platform.last_level_cache.name)
        return llc * llc_fraction / self.unique_bpp

    def untiled_time(self) -> float:
        """Per-iteration kernel bandwidth time without tiling.

        Uses the roofline's reuse-distance working set (the whole chain's
        per-iteration traffic), so incidental cache residency is judged
        exactly as :func:`repro.perfmodel.roofline.loop_time` judges it —
        the tiling speedup is then purely the effect of the deliberate
        blocking.
        """
        from ..perfmodel import calibration as _cal
        from ..perfmodel.roofline import loop_time

        total = 0.0
        for l in self.app.loops:
            total += loop_time(l, self.app, self.platform, self.config).t_bandwidth
        return total

    def tiled_time(self, llc_fraction: float = 0.5) -> float:
        """Per-iteration kernel time with cache-blocking tiling.

        Each tile fetches its unique footprint from memory once; the
        chain's remaining traffic hits the last-level cache.  Cache-
        resident bandwidth passes through the same per-kernel application
        derates as memory bandwidth (complex kernels cannot consume the
        STREAM cache plateau either).
        """
        pts = max(l.points for l in self.app.loops)
        chain_bpp = self._chain_bpp()
        tile_pts = self.tile_points(llc_fraction)
        mem_bytes = pts * self.unique_bpp
        cache_bytes = pts * max(chain_bpp - self.unique_bpp, 0.0)

        ref = max(self.app.loops, key=lambda l: l.bytes_total)
        mem_bw = app_memory_bandwidth(
            self.platform, self.config, self.app, ref,
            self.hm.effective_bandwidth(max(mem_bytes, 1.0)),
        )
        tile_ws = tile_pts * self.unique_bpp
        cache_bw = app_memory_bandwidth(
            self.platform, self.config, self.app, ref,
            self.hm.effective_bandwidth(max(tile_ws, 1.0)),
        )
        t = mem_bytes / mem_bw + cache_bytes / cache_bw
        # Extra per-tile loop invocations.
        ntiles = max(1.0, pts / tile_pts)
        t += ntiles * len(self.app.loops) * loop_overhead(self.platform, self.config)
        return t * (1.0 + self.redundancy)

    def speedup(self, llc_fraction: float = 0.5) -> float:
        return self.untiled_time() / self.tiled_time(llc_fraction)
