"""Checkpoint/restart for structured-mesh applications.

Production OPS applications checkpoint their dats to HDF5; here the
state is written to a compressed ``.npz`` (the numpy-native equivalent).
Ghost layers are not stored — a restart re-exchanges halos, exactly as a
real restart does.

    from repro.ops.checkpoint import save_state, load_state
    save_state("step100.npz", [density, energy, *velocity])
    ...
    load_state("step100.npz", [density, energy, *velocity])

In distributed mode every rank saves its own shard
(``path.rank<k>.npz``), and :func:`load_state` restores the local
interior — restart must use the same decomposition, which is validated.
"""

from __future__ import annotations

import os

import numpy as np

from .block import Dat

__all__ = ["save_state", "load_state", "checkpoint_path"]


def checkpoint_path(path: str, rank: int | None) -> str:
    """The shard filename for a rank (unchanged for serial contexts)."""
    if rank is None:
        return path
    base, ext = os.path.splitext(path)
    return f"{base}.rank{rank}{ext}"


def _rank_of(dats: list[Dat]) -> int | None:
    ctx = dats[0].block.ctx
    return ctx.comm.rank if ctx.comm is not None else None


def save_state(path: str, dats: list[Dat]) -> str:
    """Write the dats' interiors (and decomposition metadata) to ``path``.

    Returns the actual file written (the rank shard in distributed mode).
    """
    if not dats:
        raise ValueError("nothing to checkpoint")
    block = dats[0].block
    if any(d.block is not block for d in dats):
        raise ValueError("all checkpointed dats must share a block")
    block.ctx.flush()
    arrays = {f"dat_{d.name}": d.interior for d in dats}
    meta = dict(
        shape=np.asarray(block.shape),
        owned=np.asarray(block.owned),
        names=np.asarray([d.name for d in dats]),
    )
    target = checkpoint_path(path, _rank_of(dats))
    np.savez_compressed(target, **arrays, **meta)
    return target


def load_state(path: str, dats: list[Dat]) -> None:
    """Restore the dats' interiors from a checkpoint written by
    :func:`save_state`; halos are marked dirty (re-exchanged on demand)."""
    if not dats:
        raise ValueError("nothing to restore")
    block = dats[0].block
    target = checkpoint_path(path, _rank_of(dats))
    with np.load(target, allow_pickle=False) as f:
        if tuple(f["shape"]) != block.shape:
            raise ValueError(
                f"checkpoint is for block shape {tuple(f['shape'])}, "
                f"not {block.shape}"
            )
        if not np.array_equal(f["owned"], np.asarray(block.owned)):
            raise ValueError("checkpoint was written with a different decomposition")
        for d in dats:
            key = f"dat_{d.name}"
            if key not in f:
                raise KeyError(f"checkpoint has no dat named {d.name!r}")
            d.interior[...] = f[key]
            d.halo_dirty = True
