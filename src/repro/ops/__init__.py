"""OPS-like structured-mesh DSL.

Declare blocks and dats, write point-wise kernels, run them with
``par_loop`` — serially, distributed over simulated MPI with automatic
halo exchange, or cache-blocked with skewed tiling.  The runtime counts
every loop's data movement and flops; those records feed the performance
model that regenerates the paper's figures.

    from repro.ops import OpsContext, Access, arg_dat, arg_gbl, star_stencil, S2D_00

    ctx = OpsContext()
    grid = ctx.block("grid", (256, 256))
    u = grid.dat("u", halo=1)
    u_new = grid.dat("u_new", halo=1)
    S5 = star_stencil(2, 1)

    def jacobi(out, inp):
        out[0, 0] = 0.25 * (inp[1, 0] + inp[-1, 0] + inp[0, 1] + inp[0, -1])

    ctx.par_loop(jacobi, "jacobi", grid, grid.interior,
                 arg_dat(u_new, S2D_00, Access.WRITE),
                 arg_dat(u, S5, Access.READ), flops_per_point=4)

Layer role (docs/ARCHITECTURE.md): structured-mesh execution layer —
runs the real numerics over simmpi, measures the per-loop byte/flop
profiles the perfmodel consumes, and emits kernel spans to repro.obs.
"""

from .access import Access, ArgDat, ArgGbl, arg_dat, arg_gbl
from .block import Block, Dat
from .checkpoint import load_state, save_state
from .multiblock import Face, Interface, MultiBlockHalo
from .parloop import DatAccessor, GblAccessor
from .runtime import LoopRecord, OpsContext, TimingModel
from .stencil import (
    S1D_0,
    S2D_00,
    S3D_000,
    Stencil,
    box_stencil,
    point_stencil,
    star_stencil,
)
from .tiling import TiledChainModel, TilePlan

__all__ = [
    "OpsContext",
    "TimingModel",
    "LoopRecord",
    "Block",
    "Dat",
    "Access",
    "ArgDat",
    "ArgGbl",
    "arg_dat",
    "arg_gbl",
    "Stencil",
    "point_stencil",
    "star_stencil",
    "box_stencil",
    "S1D_0",
    "S2D_00",
    "S3D_000",
    "DatAccessor",
    "GblAccessor",
    "TilePlan",
    "TiledChainModel",
    "save_state",
    "load_state",
    "Face",
    "Interface",
    "MultiBlockHalo",
]
