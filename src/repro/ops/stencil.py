"""Stencil descriptors: the set of relative offsets a kernel may touch.

A stencil is declared once and shared between loops, exactly as in OPS.
The DSL uses the stencil's radius for halo-exchange depth, for the
cache-pressure model, and to validate kernel accesses (an accessor
rejects offsets outside its declared stencil).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Stencil",
    "point_stencil",
    "star_stencil",
    "box_stencil",
    "S1D_0",
    "S2D_00",
    "S3D_000",
]


@dataclass(frozen=True)
class Stencil:
    """An immutable set of relative grid offsets."""

    name: str
    points: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a stencil needs at least one point")
        ndim = len(self.points[0])
        if any(len(p) != ndim for p in self.points):
            raise ValueError("all stencil points must share dimensionality")
        if len(set(self.points)) != len(self.points):
            raise ValueError(f"stencil {self.name!r} has duplicate points")

    @property
    def ndim(self) -> int:
        return len(self.points[0])

    @property
    def radius(self) -> int:
        """Chebyshev radius: the halo depth the stencil requires."""
        return max(max(abs(o) for o in p) for p in self.points)

    def __contains__(self, offset: tuple[int, ...]) -> bool:
        return tuple(offset) in self.points

    def __len__(self) -> int:
        return len(self.points)


def point_stencil(ndim: int) -> Stencil:
    """The identity stencil (the only legal write stencil)."""
    return Stencil(f"S{ndim}D_0", ((0,) * ndim,))


def star_stencil(ndim: int, radius: int) -> Stencil:
    """Axis-aligned star of the given radius (classic FD stencils)."""
    if radius < 1:
        raise ValueError("radius must be >= 1")
    pts = [(0,) * ndim]
    for d in range(ndim):
        for r in range(1, radius + 1):
            for sign in (-1, 1):
                p = [0] * ndim
                p[d] = sign * r
                pts.append(tuple(p))
    return Stencil(f"S{ndim}D_STAR{radius}", tuple(pts))


def box_stencil(ndim: int, radius: int) -> Stencil:
    """Full (2r+1)^d box."""
    if radius < 1:
        raise ValueError("radius must be >= 1")
    import itertools

    pts = tuple(itertools.product(range(-radius, radius + 1), repeat=ndim))
    return Stencil(f"S{ndim}D_BOX{radius}", pts)


#: Identity stencils, pre-built for convenience.
S1D_0 = point_stencil(1)
S2D_00 = point_stencil(2)
S3D_000 = point_stencil(3)
