"""Multi-block structured meshes: block-to-block halo coupling.

OPS is "the OPS domain specific abstraction for *multi-block* structured
grid computations" (paper ref. [22]): complex geometries are decomposed
into logically rectangular blocks whose touching faces exchange halo
data.  This module provides that coupling for the Python DSL:

- :class:`Face` — one side of a block (dimension + low/high end);
- :class:`Interface` — a pair of faces declared to coincide, with an
  optional reversed tangential orientation (2-D);
- :class:`MultiBlockHalo` — precomputed strip copies that fill each
  block's ghost layers from its neighbor's interior, for any number of
  fields.

The transfer is exact (pure copies), so a domain split into blocks
reproduces the single-block solution bitwise — tested in
``tests/ops/test_multiblock.py``.  Works in serial contexts (each block
may itself be MPI-decomposed in real OPS; this reproduction keeps
block coupling serial, as the paper's apps are all single-block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .block import Block, Dat

__all__ = ["Face", "Interface", "MultiBlockHalo"]


@dataclass(frozen=True)
class Face:
    """One side of a block: the ``side`` end (-1 low / +1 high) of ``dim``."""

    block: Block
    dim: int
    side: int

    def __post_init__(self) -> None:
        if not (0 <= self.dim < self.block.ndim):
            raise ValueError(f"dim {self.dim} out of range for {self.block.name}")
        if self.side not in (-1, 1):
            raise ValueError("side must be -1 (low) or +1 (high)")

    @property
    def extent(self) -> tuple[int, ...]:
        """Shape of the face (the block's extents in the other dims)."""
        return tuple(n for d, n in enumerate(self.block.shape) if d != self.dim)


@dataclass(frozen=True)
class Interface:
    """Two coinciding faces.

    ``reversed_tangent`` flips the (single) tangential axis — the 2-D
    case of OPS's general orientation handling.  Faces must have equal
    extents.
    """

    face_a: Face
    face_b: Face
    reversed_tangent: bool = False

    def __post_init__(self) -> None:
        if self.face_a.extent != self.face_b.extent:
            raise ValueError(
                f"face extents differ: {self.face_a.extent} vs {self.face_b.extent}"
            )
        if self.reversed_tangent and self.face_a.block.ndim != 2:
            raise ValueError("reversed_tangent is supported for 2-D blocks only")


def _strips(face: Face, depth: int, ghost: bool):
    """Slices of a dat's raw array for the face's ghost or interior strip.

    Returned as a function of the dat (halo depths differ per dat).
    """

    def for_dat(dat: Dat):
        if dat.block is not face.block:
            raise ValueError(f"dat {dat.name} not on block {face.block.name}")
        if dat.halo < depth:
            raise ValueError(f"dat {dat.name} halo {dat.halo} < interface depth {depth}")
        h = dat.halo
        sl = []
        for d, n in enumerate(dat.block.shape):
            if d != face.dim:
                sl.append(slice(h, h + n))
                continue
            if ghost:
                if face.side < 0:
                    sl.append(slice(h - depth, h))
                else:
                    sl.append(slice(h + n, h + n + depth))
            else:
                if face.side < 0:
                    sl.append(slice(h, h + depth))
                else:
                    sl.append(slice(h + n - depth, h + n))
        return tuple(sl)

    return for_dat


class MultiBlockHalo:
    """Exchange ghost layers across declared block interfaces.

    Parameters
    ----------
    interfaces:
        The block-to-block connections.
    depth:
        Ghost depth to transfer (must not exceed any coupled dat's halo).

    Call :meth:`exchange` with one dat per block (``{block: dat}``) for
    each coupled field; ghost strips of both sides are filled from the
    partner's interior.  Fill order is interface declaration order.
    """

    def __init__(self, interfaces: list[Interface], depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.interfaces = list(interfaces)
        self.depth = depth

    def exchange(self, dats: dict[Block, Dat]) -> None:
        for iface in self.interfaces:
            da = dats.get(iface.face_a.block)
            db = dats.get(iface.face_b.block)
            if da is None or db is None:
                raise KeyError(
                    "exchange needs a dat for every block of every interface"
                )
            self._copy(iface.face_b, db, iface.face_a, da, iface.reversed_tangent)
            self._copy(iface.face_a, da, iface.face_b, db, iface.reversed_tangent)

    def _copy(self, src_face: Face, src: Dat, dst_face: Face, dst: Dat,
              rev: bool) -> None:
        """Fill dst's ghost strip at dst_face from src's interior strip."""
        src_sl = _strips(src_face, self.depth, ghost=False)(src)
        dst_sl = _strips(dst_face, self.depth, ghost=True)(dst)
        chunk = src.data[src_sl]
        # Orient: the normal axis of the source strip must align with the
        # destination's normal axis.
        chunk = np.moveaxis(chunk, src_face.dim, dst_face.dim)
        # Normal direction: walking out of dst equals walking into src —
        # flip when the faces have the same side sign.
        if src_face.side == dst_face.side:
            chunk = np.flip(chunk, axis=dst_face.dim)
        if rev:
            tangent = 1 - dst_face.dim  # 2-D only (validated)
            chunk = np.flip(chunk, axis=tangent)
        dst.data[dst_sl] = chunk
        dst.halo_dirty = False  # block-coupled ghosts are now current
