"""Differential analysis of attribution trees: rank what explains a delta.

Given two attribution trees for the same application —
platform A vs platform B, or a current run vs a stored result loaded
back from the engine's store — :func:`diff_trees` aligns their leaves
by structural key (:func:`repro.obs.attribution.leaf_index`) and emits
one :class:`Contributor` per leaf with the signed seconds it adds to
the delta ``total(B) - total(A)``.  Because both trees are additive,
the contributors sum to the total delta: the ranking is a complete,
non-overlapping explanation, the model-diffing analysis of Alappat et
al. applied to our own estimates.

Sign convention: positive means *B is slower there* (the leaf costs B
more seconds than A).  The analyzer is antisymmetric by construction —
``diff_trees(a, b)`` and ``diff_trees(b, a)`` carry negated
contributions leaf for leaf — and the tests pin that.

:func:`project` layers what-if projections
(:func:`repro.obs.attribution.what_if`) on top: perturb a tree's limbs
(scale DRAM bandwidth x2, zero the MPI wait) and report the projected
total and speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from .attribution import AttrNode, leaf_index, what_if

__all__ = ["Contributor", "AttrDiff", "diff_trees", "project"]


@dataclass(frozen=True)
class Contributor:
    """One leaf's share of the delta between two trees."""

    key: tuple[str, ...]  # structural path, e.g. ("kernels", "flux", "memory")
    kind: str
    seconds_a: float
    seconds_b: float
    label_a: str
    label_b: str

    @property
    def delta(self) -> float:
        """Seconds this leaf adds to ``total(B) - total(A)``."""
        return self.seconds_b - self.seconds_a

    @property
    def label(self) -> str:
        """Display label; names both sides when they differ (e.g.
        ``memory[hbm2e] vs memory[ddr4]``)."""
        if self.label_a == self.label_b:
            return self.label_a
        return f"{self.label_a} vs {self.label_b}"

    def as_dict(self) -> dict:
        return {
            "key": list(self.key),
            "kind": self.kind,
            "label": self.label,
            "seconds_a": self.seconds_a,
            "seconds_b": self.seconds_b,
            "delta": self.delta,
        }


@dataclass(frozen=True)
class AttrDiff:
    """The aligned comparison of two attribution trees."""

    a: AttrNode
    b: AttrNode
    contributors: tuple[Contributor, ...]  # ranked by |delta|, largest first

    @property
    def total_a(self) -> float:
        return self.a.seconds

    @property
    def total_b(self) -> float:
        return self.b.seconds

    @property
    def delta(self) -> float:
        return self.total_b - self.total_a

    @property
    def speedup(self) -> float:
        """How much faster A is than B (> 1 means A wins)."""
        return self.total_b / self.total_a if self.total_a else float("inf")

    def by_kind(self) -> list[tuple[str, float]]:
        """Contributions aggregated per leaf kind, ranked by |delta| —
        the headline view (*the* memory limb, *the* MPI wait), summing
        to :attr:`delta` like the full ranking does."""
        agg: dict[str, float] = {}
        for c in self.contributors:
            agg[c.kind] = agg.get(c.kind, 0.0) + c.delta
        return sorted(agg.items(), key=lambda kv: abs(kv[1]), reverse=True)

    def as_dict(self) -> dict:
        return {
            "a": {"platform": self.a.meta.get("platform"),
                  "config": self.a.meta.get("config"),
                  "total_seconds": self.total_a},
            "b": {"platform": self.b.meta.get("platform"),
                  "config": self.b.meta.get("config"),
                  "total_seconds": self.total_b},
            "delta_seconds": self.delta,
            "speedup_a_over_b": self.speedup,
            "by_kind": [{"kind": k, "delta": d} for k, d in self.by_kind()],
            "contributors": [c.as_dict() for c in self.contributors],
        }


def diff_trees(a: AttrNode, b: AttrNode) -> AttrDiff:
    """Align two trees' leaves and rank the contributors to the delta.

    Trees should describe the same application (same loop names); a leaf
    present on only one side contributes its full seconds, matched
    against zero.  Ranking is by absolute contribution, ties broken by
    key so the order is deterministic.
    """
    ia, ib = leaf_index(a), leaf_index(b)
    contributors = []
    for key in sorted(set(ia) | set(ib)):
        la, lb = ia.get(key), ib.get(key)
        contributors.append(Contributor(
            key=key,
            kind=(la or lb).kind,
            seconds_a=la.seconds if la else 0.0,
            seconds_b=lb.seconds if lb else 0.0,
            label_a=la.name if la else "-",
            label_b=lb.name if lb else "-",
        ))
    contributors.sort(key=lambda c: (-abs(c.delta), c.key))
    return AttrDiff(a, b, tuple(contributors))


def project(tree: AttrNode, knobs: dict[str, float]) -> dict:
    """What-if projection summary for one tree under perturbed limbs.

    Returns baseline/projected totals computed the same way (sum of
    leaves), so an all-ones knob set projects exactly the baseline.
    """
    baseline = what_if(tree, {})
    projected = what_if(tree, knobs)
    return {
        "knobs": dict(knobs),
        "baseline_seconds": baseline.seconds,
        "projected_seconds": projected.seconds,
        "speedup": (baseline.seconds / projected.seconds
                    if projected.seconds else float("inf")),
        "tree": projected,
    }
