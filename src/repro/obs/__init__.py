"""Observability layer: span-based tracing and per-kernel metrics.

Sits beside every execution layer of the stack (see
``docs/ARCHITECTURE.md``): the ops/op2 parloop engines record per-kernel
spans (points, counted bytes, flops, access modes), the simmpi runtime
records sends, halo exchanges and per-rank virtual-clock wait
intervals, the perfmodel records each loop's roofline terms and winning
limb, and the sweep engine records job lifecycle on a separate
wall-clock domain.

- :mod:`~repro.obs.tracer` — :class:`Tracer`, :func:`tracing` /
  :func:`active_tracer` (context-var scoped; a true no-op when
  disabled);
- :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` (labeled
  counters/gauges/histograms), :func:`collecting` /
  :func:`active_metrics` (same scoping and no-op guarantee as the
  tracer), plus Prometheus-text and JSON exporters;
- :mod:`~repro.obs.fidelity` — the paper-fidelity scorecard and drift
  gate behind ``python -m repro fidelity`` / ``drift`` (imported
  lazily by the CLI: it pulls in the harness layer);
- :mod:`~repro.obs.export` — Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto) and span-nesting validation;
- :mod:`~repro.obs.breakdown` — per-kernel breakdown tables (text/CSV)
  and the summary dict :mod:`repro.harness.report` renders;
- :mod:`~repro.obs.apptrace` — model-level timeline of one estimated
  run (one span per kernel loop and per halo exchange), behind
  ``python -m repro trace``;
- :mod:`~repro.obs.attribution` — additive attribution trees over
  estimates (every leaf's seconds sum back to the total) and what-if
  projections;
- :mod:`~repro.obs.diff` — differential analysis of two attribution
  trees (``python -m repro explain``): ranked contributors to a
  cross-platform or cross-run delta;
- :mod:`~repro.obs.htmlreport` — the self-contained HTML / markdown
  report behind ``python -m repro report`` (imported lazily by the
  CLI: it pulls in the harness layer).

See ``docs/TRACING.md`` for the span taxonomy and overhead guarantees.

Layer role (docs/ARCHITECTURE.md): sits beside the stack rather than
in it — every execution layer records into it, nothing reads back.
"""

from .apptrace import build_timeline
from .attribution import (
    WHAT_IF_KNOBS,
    AttrNode,
    attribute_estimate,
    leaf_index,
    what_if,
)
from .breakdown import (
    BREAKDOWN_COLUMNS,
    breakdown_csv,
    breakdown_table,
    kernel_breakdown,
    summary_dict,
)
from .diff import AttrDiff, Contributor, diff_trees, project
from .export import check_nesting, chrome_trace, write_chrome_trace
from .metrics import (
    MetricsRegistry,
    active_metrics,
    collecting,
    prometheus_text,
    snapshot,
)
from .tracer import Span, TraceEvent, Tracer, active_tracer, tracing

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "tracing",
    "MetricsRegistry",
    "active_metrics",
    "collecting",
    "prometheus_text",
    "snapshot",
    "chrome_trace",
    "write_chrome_trace",
    "check_nesting",
    "BREAKDOWN_COLUMNS",
    "kernel_breakdown",
    "breakdown_csv",
    "breakdown_table",
    "summary_dict",
    "build_timeline",
    "AttrNode",
    "attribute_estimate",
    "leaf_index",
    "WHAT_IF_KNOBS",
    "what_if",
    "AttrDiff",
    "Contributor",
    "diff_trees",
    "project",
]
