"""Per-kernel breakdown tables and summaries of an :class:`AppEstimate`.

The paper's analysis lives in per-kernel attributions (which loops are
bandwidth- vs latency-bound, where the time goes); these helpers expose
exactly the ``AppEstimate.per_loop`` numbers — no re-derivation, so a
table row is bit-equal to the estimate it came from (the tests assert
this).  Rendering goes through :func:`repro.harness.report.
render_breakdown`, which consumes :func:`summary_dict`.
"""

from __future__ import annotations

import csv
import io

__all__ = [
    "BREAKDOWN_COLUMNS",
    "kernel_breakdown",
    "breakdown_csv",
    "breakdown_table",
    "summary_dict",
]

#: Column order of the per-kernel breakdown (raw model quantities).
BREAKDOWN_COLUMNS = (
    "loop",
    "time",
    "t_bandwidth",
    "t_compute",
    "t_latency",
    "overhead",
    "counted_bytes",
    "flops",
    "bottleneck",
)


def kernel_breakdown(est) -> tuple[tuple[str, ...], list[tuple]]:
    """(columns, rows): one row per loop, values straight off the
    estimate's :class:`~repro.perfmodel.roofline.LoopTime` entries."""
    rows = [
        (
            lt.name,
            lt.time,
            lt.t_bandwidth,
            lt.t_compute,
            lt.t_latency,
            lt.overhead,
            lt.counted_bytes,
            lt.flops,
            lt.bottleneck,
        )
        for lt in est.per_loop
    ]
    return BREAKDOWN_COLUMNS, rows


def breakdown_csv(est) -> str:
    """The per-kernel breakdown as CSV (header + one row per loop)."""
    columns, rows = kernel_breakdown(est)
    buf = io.StringIO()
    w = csv.writer(buf)
    w.writerow(columns)
    w.writerows(rows)
    return buf.getvalue()


def breakdown_table(est) -> str:
    """The per-kernel breakdown as an aligned text table."""
    from ..harness.report import format_table  # lazy: obs must import light

    columns, rows = kernel_breakdown(est)
    return format_table(columns, rows)


def summary_dict(est) -> dict:
    """Whole-run summary plus per-loop breakdown, as plain data.

    This is the hand-off format :func:`repro.harness.report.
    render_breakdown` renders and the trace CLI prints; keys mirror the
    ``AppEstimate`` field/property names.
    """
    return {
        "app": est.app,
        "platform": est.platform,
        "config": est.config_label,
        "total_time": est.total_time,
        "compute_time": est.compute_time,
        "mpi_time": est.mpi_time,
        "mpi_fraction": est.mpi_fraction,
        "effective_bandwidth": est.effective_bandwidth,
        "achieved_flops": est.achieved_flops,
        "counted_bytes": est.counted_bytes,
        "flops": est.flops,
        "loops": [
            {
                "name": lt.name,
                "time": lt.time,
                "t_bandwidth": lt.t_bandwidth,
                "t_compute": lt.t_compute,
                "t_latency": lt.t_latency,
                "overhead": lt.overhead,
                "counted_bytes": lt.counted_bytes,
                "flops": lt.flops,
                "bottleneck": lt.bottleneck,
            }
            for lt in est.per_loop
        ],
    }
