"""Labeled metrics registry: counters, gauges and histograms.

The observability counterpart of :mod:`repro.obs.tracer`: where the
tracer records *when* things happened, the registry counts *how much* —
cache hits per level, simulated-MPI messages and per-rank wait seconds,
winning roofline limbs, result-store traffic.  Instrumentation sites
live in the layers the tracer does not count (``mem``, ``simmpi``,
``perfmodel``, ``engine.store``) and all follow the same pattern::

    m = active_metrics()
    if m is not None:
        m.inc("mem_cache_hits_total", level="L1")

Scoping mirrors the tracer exactly: :func:`collecting` installs a
registry in a :mod:`contextvars` context variable, and
:func:`active_metrics` is a no-op (module-global integer check, no
ContextVar lookup) while no registry is installed anywhere in the
process.  Metrics therefore have zero overhead on uninstrumented runs —
the tests pin this down by asserting bit-identical sweep results and
store bytes with and without a registry installed.

Metric taxonomy (see ``docs/OBSERVABILITY.md`` for the full table):
names are Prometheus-style snake case, ``*_total`` for counters,
``*_seconds``/``*_bytes`` units spelled out, and labels identify the
subdivision (cache ``level``, MPI ``rank``, roofline ``limb``, ...).

Exporters: :func:`prometheus_text` renders the Prometheus text
exposition format; :func:`snapshot` returns a JSON-able dict (the
``python -m repro metrics --json`` output).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "active_metrics",
    "bucket_quantile",
    "collecting",
    "prometheus_text",
    "quantile_summary",
    "snapshot",
]

#: Default histogram bucket upper bounds (seconds-flavored: the only
#: histograms the stack records out of the box are job durations).
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


def _labelkey(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def bucket_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float | None:
    """Quantile ``q`` of a cumulative-bucket histogram, or None when empty.

    Monotone linear interpolation inside the owning bucket, the same
    estimate Prometheus' ``histogram_quantile`` computes: the rank
    ``q * count`` is located in the first bucket whose cumulative count
    reaches it, and the value is interpolated between the bucket's lower
    and upper bound assuming uniform mass.  Mass in the +Inf bucket has
    no upper bound to interpolate toward, so it clamps to the last
    finite bound — a deliberate underestimate rather than a NaN.

    ``counts`` is per-bucket (len(bounds) + 1, last entry the +Inf
    overflow), exactly the :class:`HistogramValue` layout.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    acc = 0.0
    for i, n in enumerate(counts[: len(bounds)]):
        if n == 0:
            continue
        if acc + n >= rank:
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            frac = (rank - acc) / n
            return lower + (upper - lower) * max(0.0, min(1.0, frac))
        acc += n
    # Rank falls in the +Inf bucket: clamp to the largest finite bound
    # (or the largest observed total when there are no finite bounds).
    return float(bounds[-1]) if bounds else 0.0


@dataclass
class HistogramValue:
    """One histogram sample series: cumulative buckets plus sum/count."""

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)  # one per bound, + inf
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        # bisect_left on the sorted bounds returns the first index whose
        # bound >= value — identical bucket assignment (``value <= bound``
        # cumulative semantics) to a linear scan, in O(log n); a value
        # above every bound lands on len(bounds), the +Inf slot.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper-bound, cumulative-count) pairs, ending at +inf."""
        out, acc = [], 0
        for bound, n in zip(self.bounds, self.counts):
            acc += n
            out.append((bound, acc))
        out.append((float("inf"), acc + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float | None:
        """Estimated quantile ``q`` (0..1), or None for an empty histogram.

        Delegates to :func:`bucket_quantile`: monotone interpolation
        within the owning bucket, +Inf mass clamped to the last finite
        bound.  Never returns NaN.
        """
        return bucket_quantile(self.bounds, self.counts, q)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Family:
    """All samples of one metric name (one kind, many label sets)."""

    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind  # 'counter' | 'gauge' | 'histogram'
        self.samples: dict[tuple, float | HistogramValue] = {}


class MetricsRegistry:
    """Thread-safe collector of labeled counters, gauges and histograms.

    A metric name belongs to exactly one kind; mixing kinds under one
    name raises, because the exporters could not type the family.
    Recording never mutates anything the model reads, so an installed
    registry cannot change results.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ---- recording ----------------------------------------------------

    def _family(self, name: str, kind: str) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = _Family(name, kind)
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {fam.kind}, not a {kind}"
            )
        return fam

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (>= 0) to a counter sample."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (got {value})")
        key = _labelkey(labels)
        with self._lock:
            fam = self._family(name, "counter")
            fam.samples[key] = fam.samples.get(key, 0) + value

    def set(self, name: str, value: float, **labels) -> None:
        """Set a gauge sample to ``value``."""
        key = _labelkey(labels)
        with self._lock:
            self._family(name, "gauge").samples[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels,
    ) -> None:
        """Record ``value`` into a histogram sample.

        ``buckets`` fixes the bucket bounds on first observation of a
        label set; later observations reuse the existing bounds.
        """
        key = _labelkey(labels)
        with self._lock:
            fam = self._family(name, "histogram")
            hist = fam.samples.get(key)
            if hist is None:
                hist = fam.samples[key] = HistogramValue(
                    bounds=tuple(buckets) if buckets else DEFAULT_BUCKETS
                )
            hist.observe(value)

    # ---- reading ------------------------------------------------------

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Current value of one counter/gauge sample (``default`` when
        the sample has never been recorded)."""
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                return default
            v = fam.samples.get(_labelkey(labels), default)
        if isinstance(v, HistogramValue):
            raise ValueError(f"metric {name!r} is a histogram; use histogram()")
        return v

    def histogram(self, name: str, **labels) -> HistogramValue | None:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                return None
            v = fam.samples.get(_labelkey(labels))
        if v is not None and not isinstance(v, HistogramValue):
            raise ValueError(f"metric {name!r} is a {type(v).__name__}, not a histogram")
        return v

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across every label set."""
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                return 0.0
            return sum(fam.samples.values())

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def kind(self, name: str) -> str | None:
        with self._lock:
            fam = self._families.get(name)
            return fam.kind if fam else None

    def samples(self, name: str) -> list[tuple[dict, float | HistogramValue]]:
        """(labels, value) pairs of one family, label-sorted."""
        with self._lock:
            fam = self._families.get(name)
            items = sorted(fam.samples.items()) if fam else []
        return [(dict(k), v) for k, v in items]

    def merge(self, other: "MetricsRegistry") -> int:
        """Fold ``other``'s samples into this registry; returns the
        number of samples merged.

        Counters add, gauges take the other registry's value, and
        histograms with matching bucket bounds add elementwise (a
        sample that exists only in ``other`` is copied).  Mismatched
        kinds or histogram bounds raise, mirroring the single-registry
        kind check.
        """
        merged = 0
        for name in other.names():
            kind = other.kind(name)
            for labels, v in other.samples(name):
                if kind == "counter":
                    self.inc(name, v, **labels)
                elif kind == "gauge":
                    self.set(name, v, **labels)
                else:
                    key = _labelkey(labels)
                    with self._lock:
                        fam = self._family(name, "histogram")
                        mine = fam.samples.get(key)
                        if mine is None:
                            fam.samples[key] = HistogramValue(
                                bounds=v.bounds, counts=list(v.counts),
                                total=v.total, count=v.count,
                            )
                        elif mine.bounds != v.bounds:
                            raise ValueError(
                                f"histogram {name!r} bucket bounds differ; "
                                "cannot merge"
                            )
                        else:
                            mine.counts = [
                                a + b for a, b in zip(mine.counts, v.counts)
                            ]
                            mine.total += v.total
                            mine.count += v.count
                merged += 1
        return merged

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(f.samples) for f in self._families.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            fams = len(self._families)
        return f"<MetricsRegistry {fams} families, {len(self)} samples>"


# ---------------------------------------------------------------------------
# Exporters


def snapshot(registry: MetricsRegistry) -> dict:
    """JSON-able snapshot: ``{name: {"type": ..., "samples": [...]}}``.

    Histograms export their bucket bounds, per-bucket counts, sum and
    count; counters/gauges export a plain ``value``.  Deterministically
    ordered (names and label sets sorted) so snapshots diff cleanly.
    """
    out: dict = {}
    for name in registry.names():
        rows = []
        for labels, v in registry.samples(name):
            if isinstance(v, HistogramValue):
                rows.append({
                    "labels": labels,
                    "buckets": [
                        {"le": b, "count": c} for b, c in zip(v.bounds, v.counts)
                    ] + [{"le": "+Inf", "count": v.counts[-1]}],
                    "sum": v.total,
                    "count": v.count,
                    "quantiles": {
                        "p50": v.quantile(0.50),
                        "p95": v.quantile(0.95),
                        "p99": v.quantile(0.99),
                    },
                })
            else:
                rows.append({"labels": labels, "value": v})
        out[name] = {"type": registry.kind(name), "samples": rows}
    return out


def _fmt_value(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Histograms render the standard ``_bucket``/``_sum``/``_count``
    triplet with cumulative ``le`` labels.
    """
    lines: list[str] = []
    for name in registry.names():
        lines.append(f"# TYPE {name} {registry.kind(name)}")
        for labels, v in registry.samples(name):
            if isinstance(v, HistogramValue):
                for bound, cum in v.cumulative():
                    le = "+Inf" if bound == float("inf") else _fmt_value(bound)
                    lines.append(
                        f"{name}_bucket{_fmt_labels({**labels, 'le': le})} {cum}"
                    )
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(v.total)}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {v.count}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(v)}")
    return "\n".join(lines) + ("\n" if lines else "")


def quantile_summary(registry: MetricsRegistry) -> str:
    """Human-oriented p50/p95/p99 lines for every histogram family.

    Rendered as ``# quantile`` comment lines so the block can be
    appended to a Prometheus exposition body without confusing parsers
    (comments other than ``# TYPE``/``# HELP`` are ignored).  Empty
    histograms render ``-`` rather than NaN.
    """

    def fmt(x: float | None) -> str:
        return "-" if x is None else f"{x:.6g}"

    lines: list[str] = []
    for name in registry.names():
        if registry.kind(name) != "histogram":
            continue
        for labels, v in registry.samples(name):
            assert isinstance(v, HistogramValue)
            lines.append(
                f"# quantile {name}{_fmt_labels(labels)} "
                f"p50={fmt(v.quantile(0.50))} p95={fmt(v.quantile(0.95))} "
                f"p99={fmt(v.quantile(0.99))} count={v.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Installation (mirrors repro.obs.tracer exactly)

_metrics_var: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics", default=None
)
#: Count of live ``collecting()`` scopes process-wide.  The hot-path
#: guard: while zero, :func:`active_metrics` returns without touching
#: the ContextVar, so instrumented code costs one global read when
#: disabled.
_install_count = 0


def active_metrics() -> MetricsRegistry | None:
    """The registry installed in the current context, or None.

    This is the only call instrumentation sites make on unmetered runs;
    it must stay allocation-free and branch-predictable.
    """
    if _install_count == 0:
        return None
    return _metrics_var.get()


@contextmanager
def collecting(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (or a fresh one) for the duration of the block.

    Scoped via ContextVar: nested blocks shadow outer ones, and thread
    pools that propagate contexts (the sweep executor does) see the
    installing thread's registry.
    """
    global _install_count
    reg = registry if registry is not None else MetricsRegistry()
    token = _metrics_var.set(reg)
    _install_count += 1
    try:
        yield reg
    finally:
        _install_count -= 1
        _metrics_var.reset(token)
