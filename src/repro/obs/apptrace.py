"""Model-level timeline construction for one estimated application run.

:func:`build_timeline` lays an :class:`~repro.perfmodel.roofline.
AppEstimate` out on a simulated-time timeline: one span per kernel loop
(carrying its byte/flop counts and the roofline limb that won) followed
by the iteration's MPI phase — one span per halo exchange plus the rank
imbalance the model charges.  The result is what ``python -m repro
trace`` exports: the per-iteration structure of Figures 3–9, viewable
in ``chrome://tracing`` / Perfetto.

Spans use two lanes of the ``timeline`` domain: ``kernels`` for compute
and ``mpi`` for communication, both in simulated seconds.  Exact
execution-interleaved traces (real sends, per-rank waits) come from the
DSL/simmpi instrumentation instead — run an application through a
distributed context under :func:`repro.obs.tracing`.
"""

from __future__ import annotations

__all__ = ["build_timeline", "KERNEL_TRACK", "MPI_TRACK"]

KERNEL_TRACK = ("timeline", "kernels")
MPI_TRACK = ("timeline", "mpi")


def build_timeline(tracer, spec, est, iterations: int = 1) -> float:
    """Record ``iterations`` representative iterations of ``est`` on
    ``tracer``; returns the timeline's end time (simulated seconds).

    ``spec`` is the :class:`~repro.perfmodel.kernelmodel.AppSpec` the
    estimate was computed from (supplies the halo-exchange rate).  Loop
    spans carry the per-loop roofline terms verbatim; halo-exchange
    spans split the communication estimate evenly over the exchanges
    the profiling counted per iteration.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    per_iter_mpi = est.mpi_time / spec.iterations
    comm_time = est.comm.time_per_iter
    imbalance = max(per_iter_mpi - comm_time, 0.0)
    n_exchanges = max(int(round(spec.exchanges_per_iter)), 0)

    t = 0.0
    for it in range(iterations):
        tracer.event(
            "timeline", "iteration", t, track=KERNEL_TRACK,
            iteration=it, of=spec.iterations,
        )
        for lt in est.per_loop:
            tracer.span(
                "kernel", lt.name, t, t + lt.time, track=KERNEL_TRACK,
                bytes=lt.counted_bytes,
                flops=lt.flops,
                t_bandwidth=lt.t_bandwidth,
                t_compute=lt.t_compute,
                t_latency=lt.t_latency,
                overhead=lt.overhead,
                limb=lt.bottleneck,
            )
            t += lt.time
        if n_exchanges > 0:
            per_exchange = comm_time / n_exchanges
            msgs = est.comm.messages_per_iter / n_exchanges
            nbytes = est.comm.volume_per_iter / n_exchanges
            for _ in range(n_exchanges):
                tracer.span(
                    "mpi", "halo-exchange", t, t + per_exchange,
                    track=MPI_TRACK,
                    bytes=nbytes,
                    messages=msgs,
                    fields=spec.fields_exchanged,
                    halo_depth=spec.halo_depth,
                )
                t += per_exchange
        elif comm_time > 0:
            tracer.span(
                "mpi", "communication", t, t + comm_time, track=MPI_TRACK,
                bytes=est.comm.volume_per_iter,
                messages=est.comm.messages_per_iter,
            )
            t += comm_time
        if imbalance > 0:
            tracer.span(
                "mpi", "imbalance", t, t + imbalance, track=MPI_TRACK,
                note="rank imbalance charged as MPI_Wait on fast ranks",
            )
            t += imbalance
    return t
