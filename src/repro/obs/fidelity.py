"""Paper-fidelity scorecard: model vs every published reference value.

The figure harnesses (:mod:`repro.harness.figures`) print the model's
numbers next to the paper's; this module turns that side-by-side into a
*scored* comparison.  Each figure's sweep runs through the engine, every
reference value transcribed in :mod:`repro.harness.paperdata` is matched
with the model value it corresponds to, and three statistics come out
per figure:

- **signed relative error** per entry — ``(model - paper) / paper`` for
  point references; for range references (the paper often states
  "0.75-0.85 of STREAM") the error is zero inside the range and the
  signed relative distance to the nearest bound outside it;
- **rank agreement** — the concordant-pair fraction between the model's
  ordering and the paper's ordering of the figure's point entries (a
  Kendall-style statistic: 1.0 means every pair ordered the same way);
- a **verdict** — pass iff the figure's worst absolute relative error
  and its rank agreement are within the thresholds stored in
  ``baselines/fidelity.json``.

``python -m repro fidelity`` renders the scorecard (markdown or JSON);
``python -m repro drift --check`` compares the current scorecard against
the recorded baseline and exits nonzero when any figure's error worsens
beyond the drift margin — the CI gate against silent model regressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import active_metrics

__all__ = [
    "FidelityEntry",
    "FigureScore",
    "Scorecard",
    "FIGURE_ORDER",
    "score_figure",
    "scorecard",
    "baseline_path",
    "load_baseline",
    "save_baseline",
    "check_drift",
]

FIGURE_ORDER = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
)

#: Fallback per-figure verdict thresholds, used when a figure has no
#: entry in ``baselines/fidelity.json`` (e.g. before the first
#: ``drift --update``).  The committed baseline overrides these.
DEFAULT_THRESHOLDS = {
    "max_abs_rel_err": 0.5,
    "min_rank_agreement": 0.6,
}

#: Allowed worsening of a figure's statistics between the recorded
#: baseline and the current scorecard before ``drift --check`` fails.
DEFAULT_DRIFT_MARGIN = 0.02


# ---------------------------------------------------------------------------
# entries


@dataclass(frozen=True)
class FidelityEntry:
    """One model value matched against one published reference."""

    figure: str
    label: str
    model: float
    paper: float | None = None  # point reference
    paper_range: tuple[float, float] | None = None  # range reference

    @property
    def kind(self) -> str:
        return "point" if self.paper is not None else "range"

    @property
    def rel_err(self) -> float:
        """Signed relative error (0.0 means spot-on / inside the range)."""
        if self.paper is not None:
            return (self.model - self.paper) / self.paper
        lo, hi = self.paper_range  # type: ignore[misc]
        if lo <= self.model <= hi:
            return 0.0
        bound = lo if self.model < lo else hi
        return (self.model - bound) / bound

    def reference_str(self) -> str:
        if self.paper is not None:
            return f"{self.paper:g}"
        lo, hi = self.paper_range  # type: ignore[misc]
        return f"{lo:g}-{hi:g}"


def _point(figure: str, label: str, model: float, paper: float) -> FidelityEntry:
    return FidelityEntry(figure, label, float(model), paper=float(paper))


def _range(
    figure: str, label: str, model: float, bounds: tuple[float, float]
) -> FidelityEntry:
    return FidelityEntry(
        figure, label, float(model),
        paper_range=(float(bounds[0]), float(bounds[1])),
    )


def rank_agreement(entries: list[FidelityEntry]) -> float | None:
    """Concordant-pair fraction between model and paper orderings.

    Only point entries participate (ranges have no single rank); pairs
    whose paper values tie are skipped.  ``None`` when fewer than two
    comparable entries exist.
    """
    pts = [e for e in entries if e.paper is not None]
    concordant = total = 0
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            dp = pts[i].paper - pts[j].paper  # type: ignore[operator]
            if dp == 0:
                continue
            dm = pts[i].model - pts[j].model
            total += 1
            if (dp > 0) == (dm > 0) and dm != 0:
                concordant += 1
    return concordant / total if total else None


# ---------------------------------------------------------------------------
# per-figure scores


@dataclass
class FigureScore:
    """All scored entries of one figure plus the aggregate statistics."""

    figure: str
    title: str
    entries: list[FidelityEntry] = field(default_factory=list)

    @property
    def max_abs_rel_err(self) -> float:
        return max((abs(e.rel_err) for e in self.entries), default=0.0)

    @property
    def mean_abs_rel_err(self) -> float:
        if not self.entries:
            return 0.0
        return sum(abs(e.rel_err) for e in self.entries) / len(self.entries)

    @property
    def rank_agreement(self) -> float | None:
        return rank_agreement(self.entries)

    def verdict(self, thresholds: dict | None = None) -> bool:
        th = {**DEFAULT_THRESHOLDS, **(thresholds or {})}
        if self.max_abs_rel_err > th["max_abs_rel_err"]:
            return False
        ra = self.rank_agreement
        if ra is not None and ra < th["min_rank_agreement"]:
            return False
        return True

    def as_dict(self, thresholds: dict | None = None) -> dict:
        return {
            "title": self.title,
            "entries": [
                {
                    "label": e.label,
                    "model": e.model,
                    "paper": e.paper if e.paper is not None else list(e.paper_range),
                    "kind": e.kind,
                    "rel_err": e.rel_err,
                }
                for e in self.entries
            ],
            "max_abs_rel_err": self.max_abs_rel_err,
            "mean_abs_rel_err": self.mean_abs_rel_err,
            "rank_agreement": self.rank_agreement,
            "verdict": "pass" if self.verdict(thresholds) else "fail",
        }


def _score_fig1() -> FigureScore:
    from ..harness import figures, paperdata as paper
    from ..machine import CPU_PLATFORMS
    from ..mem.hierarchy import HierarchyModel

    r = figures.fig1()
    s = FigureScore("fig1", r.title)
    for label, scope, model_gbs, paper_gbs in r.rows:
        if paper_gbs is not None:
            s.entries.append(
                _point("fig1", f"{label} {scope} GB/s", model_gbs, paper_gbs)
            )
    for p in CPU_PLATFORMS:
        s.entries.append(_point(
            "fig1", f"{p.short_name} cache:memory ratio",
            HierarchyModel(p).cache_to_memory_ratio(),
            paper.FIG1_CACHE_RATIO[p.short_name],
        ))
    return s


def _score_fig2() -> FigureScore:
    from ..harness import figures, paperdata as paper

    r = figures.fig2()
    s = FigureScore("fig2", r.title)
    lat = {(plat, pair): ns for plat, pair, ns in r.rows}
    s.entries.append(_point(
        "fig2", "epyc7v73x cross-socket : cross-numa latency",
        lat[("epyc7v73x", "cross-socket")] / lat[("epyc7v73x", "cross-numa")],
        paper.FIG2_EPYC_CROSS_SOCKET_FACTOR,
    ))
    return s


def _score_fig3() -> FigureScore:
    import numpy as np

    from ..harness import figures, paperdata as paper

    r = figures.fig3()
    s = FigureScore("fig3", r.title)
    vals = [v for row in r.rows for v in row[1:] if v is not None]
    ref = paper.FIG3_MEAN_SLOWDOWN["max9480"]
    s.entries.append(
        _point("fig3", "mean slowdown vs best", float(np.mean(vals)), ref["mean"])
    )
    s.entries.append(
        _point("fig3", "median slowdown vs best",
               float(np.median(vals)), ref["median"])
    )
    return s


def _score_fig4() -> FigureScore:
    from ..harness import figures

    r = figures.fig4()
    s = FigureScore("fig4", r.title)
    for config, mgcfd, volna, p_mgcfd, p_volna in r.rows:
        if mgcfd is not None and p_mgcfd is not None:
            s.entries.append(_point("fig4", f"mgcfd: {config}", mgcfd, p_mgcfd))
        if volna is not None and p_volna is not None:
            s.entries.append(_point("fig4", f"volna: {config}", volna, p_volna))
    return s


def _score_fig5() -> FigureScore:
    from ..harness import figures, paperdata as paper

    r = figures.fig5()
    s = FigureScore("fig5", r.title)
    vec_col = r.columns.index("MPI vec")
    for row in r.rows:
        if row[0] in paper.UNSTRUCTURED_APPS and row[vec_col] is not None:
            s.entries.append(_range(
                "fig5", f"{row[0]} MPI vec speedup vs MPI",
                row[vec_col], paper.FIG5_MPI_VEC_UNSTRUCTURED_RANGE,
            ))
    return s


def _score_fig6() -> FigureScore:
    from ..harness import figures, paperdata as paper
    from ..machine import XEON_MAX_9480, unstructured_config_sweep

    r = figures.fig6()
    s = FigureScore("fig6", r.title)
    for row in r.rows:
        app, vs_icx, p_icx, vs_epyc, p_epyc, a100_ratio = (
            row[0], row[5], row[6], row[7], row[8], row[9]
        )
        if p_icx is not None:
            s.entries.append(
                _point("fig6", f"{app} speedup vs 8360Y", vs_icx, p_icx)
            )
        if p_epyc is not None:
            s.entries.append(
                _point("fig6", f"{app} speedup vs EPYC", vs_epyc, p_epyc)
            )
        if app in paper.STRUCTURED_APPS:
            s.entries.append(_range(
                "fig6", f"{app} A100 speedup over MAX",
                a100_ratio, paper.FIG6_A100_SPEEDUP_RANGE,
            ))
    from ..harness.runner import best_run

    _, est = best_run(
        "minibude", XEON_MAX_9480, unstructured_config_sweep(XEON_MAX_9480)
    )
    s.entries.append(_point(
        "fig6", "minibude achieved TFLOPS on MAX",
        est.achieved_flops / 1e12, paper.MINIBUDE_TFLOPS,
    ))
    return s


def _score_fig7() -> FigureScore:
    from ..harness import figures, paperdata as paper

    r = figures.fig7()
    s = FigureScore("fig7", r.title)
    mpi_pct = {(app, plat): mpi for app, plat, mpi, _omp in r.rows}
    apps = sorted({app for app, _plat in mpi_pct})
    for app in apps:
        on_max = mpi_pct.get((app, "max9480"))
        on_icx = mpi_pct.get((app, "icx8360y"))
        if on_max and on_icx:
            s.entries.append(_range(
                "fig7", f"{app} MPI-fraction ratio MAX:8360Y",
                on_max / on_icx, paper.FIG7_MPI_RATIO_RANGE,
            ))
    return s


def _score_fig8() -> FigureScore:
    from ..harness import figures, paperdata as paper

    r = figures.fig8()
    s = FigureScore("fig8", r.title)
    for app, eff_max, p_max, eff_icx, eff_epyc in r.rows:
        if p_max is not None:
            s.entries.append(
                _point("fig8", f"{app} efficiency on MAX", eff_max, p_max)
            )
        s.entries.append(_range(
            "fig8", f"{app} efficiency on 8360Y",
            eff_icx, paper.FIG8_EFFICIENCY_RANGES["icx8360y"],
        ))
        s.entries.append(_range(
            "fig8", f"{app} efficiency on EPYC",
            eff_epyc, paper.FIG8_EFFICIENCY_RANGES["epyc7v73x"],
        ))
    return s


def _score_fig9() -> FigureScore:
    from ..harness import figures, paperdata as paper

    r = figures.fig9()
    s = FigureScore("fig9", r.title)
    tiled_max = a100_untiled = None
    for plat, untiled, tiled, speedup, p_speedup in r.rows:
        if p_speedup is not None:
            s.entries.append(
                _point("fig9", f"{plat} tiling speedup", speedup, p_speedup)
            )
        if plat == "max9480":
            tiled_max = tiled
        if plat.startswith("a100"):
            a100_untiled = untiled
    if tiled_max and a100_untiled:
        s.entries.append(_point(
            "fig9", "tiled MAX vs A100 factor",
            a100_untiled / tiled_max, paper.FIG9_TILED_MAX_VS_A100,
        ))
    return s


_SCORERS = {
    "fig1": _score_fig1,
    "fig2": _score_fig2,
    "fig3": _score_fig3,
    "fig4": _score_fig4,
    "fig5": _score_fig5,
    "fig6": _score_fig6,
    "fig7": _score_fig7,
    "fig8": _score_fig8,
    "fig9": _score_fig9,
}


def score_figure(figure: str) -> FigureScore:
    """Run one figure's sweep and score it against the paper."""
    try:
        scorer = _SCORERS[figure]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; valid: {', '.join(FIGURE_ORDER)}"
        ) from None
    score = scorer()
    m = active_metrics()
    if m is not None:
        m.inc("fidelity_figures_total", figure=figure)
        for e in score.entries:
            m.inc("fidelity_entries_total", figure=figure, kind=e.kind)
    return score


# ---------------------------------------------------------------------------
# the scorecard


@dataclass
class Scorecard:
    """Scored figures plus the thresholds used for verdicts."""

    scores: list[FigureScore]
    thresholds: dict = field(default_factory=dict)

    def _figure_thresholds(self, figure: str) -> dict:
        return self.thresholds.get(figure, {})

    @property
    def passed(self) -> bool:
        return all(s.verdict(self._figure_thresholds(s.figure)) for s in self.scores)

    def as_dict(self) -> dict:
        return {
            "passed": self.passed,
            "figures": {
                s.figure: s.as_dict(self._figure_thresholds(s.figure))
                for s in self.scores
            },
        }

    def to_markdown(self) -> str:
        lines = ["# Paper-fidelity scorecard", ""]
        n_pass = sum(
            1 for s in self.scores if s.verdict(self._figure_thresholds(s.figure))
        )
        lines.append(
            f"Overall: **{'PASS' if self.passed else 'FAIL'}** "
            f"({n_pass}/{len(self.scores)} figures within thresholds)"
        )
        lines += [
            "",
            "| figure | entries | max \\|rel err\\| | mean \\|rel err\\| "
            "| rank agreement | verdict |",
            "|---|---|---|---|---|---|",
        ]
        for s in self.scores:
            ra = s.rank_agreement
            ok = s.verdict(self._figure_thresholds(s.figure))
            lines.append(
                f"| {s.figure} | {len(s.entries)} | {s.max_abs_rel_err:.3f} "
                f"| {s.mean_abs_rel_err:.3f} "
                f"| {'-' if ra is None else f'{ra:.2f}'} "
                f"| {'pass' if ok else 'FAIL'} |"
            )
        for s in self.scores:
            lines += ["", f"## {s.figure} — {s.title}", ""]
            lines += [
                "| entry | model | paper | rel err |",
                "|---|---|---|---|",
            ]
            for e in s.entries:
                lines.append(
                    f"| {e.label} | {e.model:.3f} | {e.reference_str()} "
                    f"| {e.rel_err:+.3f} |"
                )
        return "\n".join(lines) + "\n"


def scorecard(figures: list[str] | None = None) -> Scorecard:
    """Score the requested figures (default: all nine, paper order)."""
    names = list(figures) if figures else list(FIGURE_ORDER)
    baseline = load_baseline()
    thresholds = {
        fig: {
            k: v for k, v in entry.items()
            if k in ("max_abs_rel_err", "min_rank_agreement")
        }
        for fig, entry in (baseline or {}).get("figures", {}).items()
    }
    return Scorecard([score_figure(f) for f in names], thresholds)


# ---------------------------------------------------------------------------
# drift baseline


def baseline_path() -> Path:
    """``baselines/fidelity.json`` at the repository root (resolved
    relative to the installed package so the CLI works from any cwd)."""
    return Path(__file__).resolve().parents[3] / "baselines" / "fidelity.json"


def load_baseline(path: Path | None = None) -> dict | None:
    p = path or baseline_path()
    if not p.exists():
        return None
    return json.loads(p.read_text())


def save_baseline(card: Scorecard, path: Path | None = None) -> Path:
    """Record the current scorecard as the drift baseline.

    Verdict thresholds already present in the file are preserved; the
    recorded statistics are refreshed from ``card``.
    """
    p = path or baseline_path()
    old = load_baseline(p) or {}
    old_figs = old.get("figures", {})
    figures = {}
    for s in card.scores:
        prev = old_figs.get(s.figure, {})
        figures[s.figure] = {
            "max_abs_rel_err": prev.get(
                "max_abs_rel_err", DEFAULT_THRESHOLDS["max_abs_rel_err"]
            ),
            "min_rank_agreement": prev.get(
                "min_rank_agreement", DEFAULT_THRESHOLDS["min_rank_agreement"]
            ),
            "recorded_max_abs_rel_err": round(s.max_abs_rel_err, 6),
            "recorded_rank_agreement": (
                None if s.rank_agreement is None else round(s.rank_agreement, 6)
            ),
            "entries": len(s.entries),
        }
    data = {
        "drift_margin": old.get("drift_margin", DEFAULT_DRIFT_MARGIN),
        "figures": figures,
    }
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return p


def check_drift(card: Scorecard, baseline: dict) -> list[str]:
    """Regression messages (empty = no drift beyond tolerance).

    A figure drifts when its worst absolute relative error grows, or its
    rank agreement shrinks, by more than the baseline's ``drift_margin``
    — and entries disappearing from a figure is itself a regression.
    """
    margin = baseline.get("drift_margin", DEFAULT_DRIFT_MARGIN)
    problems = []
    figs = baseline.get("figures", {})
    for s in card.scores:
        ref = figs.get(s.figure)
        if ref is None:
            problems.append(f"{s.figure}: no baseline recorded (run drift --update)")
            continue
        rec_err = ref.get("recorded_max_abs_rel_err")
        if rec_err is not None and s.max_abs_rel_err > rec_err + margin:
            problems.append(
                f"{s.figure}: max |rel err| {s.max_abs_rel_err:.3f} worsened "
                f"past baseline {rec_err:.3f} (+{margin} margin)"
            )
        rec_ra = ref.get("recorded_rank_agreement")
        ra = s.rank_agreement
        if rec_ra is not None and ra is not None and ra < rec_ra - margin:
            problems.append(
                f"{s.figure}: rank agreement {ra:.2f} fell below "
                f"baseline {rec_ra:.2f} (-{margin} margin)"
            )
        n_ref = ref.get("entries")
        if n_ref is not None and len(s.entries) < n_ref:
            problems.append(
                f"{s.figure}: {len(s.entries)} entries scored, baseline "
                f"recorded {n_ref}"
            )
    return problems
