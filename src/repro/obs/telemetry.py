"""Continuous telemetry: time-series sampling of metrics registries.

Everything else in :mod:`repro.obs` is point-in-time — the tracer dumps
one span file per run, the metrics registry exports one snapshot when
asked.  This module observes *change over time*: a
:class:`TelemetrySampler` snapshots a registry on a fixed interval into
bounded per-family rings (counters as deltas/rates, gauges as values,
histograms as cumulative buckets), optionally appending each sample as
one JSONL record for offline analysis, and a declarative
:class:`SLOEngine` evaluates latency/error objectives over sliding
windows of those rings with the classic multi-window burn-rate rule.

The same zero-overhead contract as the tracer and registry applies:
nothing here runs unless a sampler is explicitly constructed (the serve
layer starts one per server; ``repro sweep --telemetry`` starts one per
sweep), and a sampler only *reads* registries — it can never perturb
model results.  Sampling is pull-based: the hot path never calls into
this module; the sampler thread calls :func:`~repro.obs.metrics.snapshot`
-shaped reads on its own clock.

Ring layout (per metric family, per label set, bounded deque):

========== =============================================
kind        ring point
========== =============================================
counter     ``(t, cumulative, delta, rate_per_s)``
gauge       ``(t, value)``
histogram   ``(t, bucket_counts, sum, count)`` cumulative
========== =============================================

Burn rate: for an objective with target ``T`` (e.g. 0.99), the burn is
``bad_fraction / (1 - T)`` — 1.0 means the error budget is being spent
exactly as fast as it accrues.  Status follows the SRE two-window rule:
``degraded`` when the short-window burn >= 1, ``failing`` when the
short-window burn >= 14.4 *and* the long window confirms (>= 1), and
recovery requires the burn to stay <= 0.5 for several consecutive
evaluations (hysteresis) so a single quiet sample cannot flap the
status back to ``ok``.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Sequence

from .metrics import (
    HistogramValue,
    MetricsRegistry,
    bucket_quantile,
    collecting,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL",
    "SLO",
    "SLOEngine",
    "STATUS_ORDER",
    "TelemetrySampler",
    "read_log",
    "sampling",
    "summarize_log",
]

#: Default sampling interval in seconds (``--sample-interval``).
DEFAULT_INTERVAL = 1.0
#: Default ring capacity: 600 points = 10 minutes at 1 Hz, which covers
#: the long SLO window with room to spare.
DEFAULT_CAPACITY = 600

#: Severity order for health states; higher index is worse.
STATUS_ORDER = ("ok", "degraded", "failing")


# ---------------------------------------------------------------------------
# SLOs


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    ``kind`` selects the evaluator:

    - ``latency``: ``family`` is a histogram; an observation is *bad*
      when it exceeds ``threshold_s``.  The bad fraction over a window
      is estimated from the windowed bucket deltas by interpolating the
      CDF at the threshold.
    - ``errors``: ``family`` is a counter with a ``status`` label; a
      sample is *bad* when its status starts with
      ``bad_status_prefix`` (default server errors, ``5xx``).

    ``labels`` filters the family's label sets (subset match), so one
    objective can pin ``endpoint=/run`` while another sums everything.
    """

    name: str
    family: str
    kind: str = "latency"  # 'latency' | 'errors'
    labels: tuple[tuple[str, str], ...] = ()
    threshold_s: float | None = None
    target: float = 0.99
    bad_status_prefix: str = "5"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "errors"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and self.threshold_s is None:
            raise ValueError(f"latency SLO {self.name!r} needs threshold_s")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {self.target}")


def _matches(labels: dict, want: tuple[tuple[str, str], ...]) -> bool:
    return all(labels.get(k) == v for k, v in want)


def _cdf_count(
    bounds: tuple[float, ...], deltas: Sequence[float], threshold: float
) -> float:
    """Estimated number of observations <= threshold in a bucket delta."""
    i = bisect_left(bounds, threshold)
    below = float(sum(deltas[:i]))
    if i < len(bounds) and deltas[i]:
        lower = bounds[i - 1] if i > 0 else 0.0
        upper = bounds[i]
        span = upper - lower
        frac = (threshold - lower) / span if span > 0 else 1.0
        below += deltas[i] * max(0.0, min(1.0, frac))
    return below


class SLOEngine:
    """Evaluates a set of :class:`SLO` objectives against sampler rings.

    Stateful only for hysteresis: each objective remembers its current
    status and how many consecutive clean evaluations it has seen, so
    recovery is deliberate rather than instant.  ``evaluate`` is called
    by the sampler under the sampler's lock.
    """

    SHORT_WINDOW = 60.0
    LONG_WINDOW = 600.0
    DEGRADED_BURN = 1.0
    FAILING_BURN = 14.4
    RECOVER_BURN = 0.5
    RECOVER_TICKS = 3
    #: Below this many short-window observations the objective is not
    #: judged (reads ``ok``): with one or two samples the bad fraction
    #: is only ever 0%, 50% or 100%, and a single cold request would
    #: otherwise flip the whole service to ``failing``.
    MIN_SAMPLES = 5

    def __init__(self, slos: Sequence[SLO] = ()) -> None:
        self.slos = tuple(slos)
        self._status: dict[str, str] = {s.name: "ok" for s in self.slos}
        self._clean: dict[str, int] = {s.name: 0 for s in self.slos}

    # -- window math ----------------------------------------------------

    def _bad_fraction(
        self, sampler: "TelemetrySampler", slo: SLO, now: float, window: float
    ) -> tuple[float, float]:
        """(bad_fraction, window_total) for one objective and window."""
        cutoff = now - window
        if slo.kind == "latency":
            bad = total = 0.0
            for labels, points in sampler._series_for(slo.family):
                if not _matches(labels, slo.labels) or not points:
                    continue
                bounds = sampler._bounds.get(slo.family)
                if bounds is None:
                    continue
                latest = points[-1]
                base = _baseline(points, cutoff)
                deltas = [
                    c - (base[1][j] if base is not None else 0)
                    for j, c in enumerate(latest[1])
                ]
                n = sum(deltas)
                if n <= 0:
                    continue
                total += n
                bad += n - _cdf_count(bounds, deltas, slo.threshold_s)
            return ((bad / total) if total else 0.0, total)
        # errors: counter deltas split by status label prefix
        bad = total = 0.0
        for labels, points in sampler._series_for(slo.family):
            if not _matches(labels, slo.labels) or not points:
                continue
            latest = points[-1]
            base = _baseline(points, cutoff)
            delta = latest[1] - (base[1] if base is not None else 0.0)
            if delta <= 0:
                continue
            total += delta
            if str(labels.get("status", "")).startswith(slo.bad_status_prefix):
                bad += delta
        return ((bad / total) if total else 0.0, total)

    def _burn(self, bad_fraction: float, target: float) -> float:
        return bad_fraction / (1.0 - target)

    # -- evaluation -----------------------------------------------------

    def evaluate(self, sampler: "TelemetrySampler", now: float) -> dict:
        """Evaluate every objective; returns the health sub-document.

        No objectives, or no samples yet, reads as ``ok`` — an idle
        service has spent no error budget.
        """
        objectives = []
        worst = 0
        for slo in self.slos:
            frac_s, total_s = self._bad_fraction(
                sampler, slo, now, self.SHORT_WINDOW
            )
            frac_l, _ = self._bad_fraction(sampler, slo, now, self.LONG_WINDOW)
            burn_s = self._burn(frac_s, slo.target)
            burn_l = self._burn(frac_l, slo.target)
            if total_s < self.MIN_SAMPLES:
                raw = "ok"
            elif burn_s >= self.FAILING_BURN and burn_l >= self.DEGRADED_BURN:
                raw = "failing"
            elif burn_s >= self.DEGRADED_BURN:
                raw = "degraded"
            else:
                raw = "ok"
            current = self._status[slo.name]
            if STATUS_ORDER.index(raw) >= STATUS_ORDER.index(current):
                # Same or worse: adopt immediately, reset the streak.
                self._status[slo.name] = raw
                self._clean[slo.name] = 0
            elif burn_s <= self.RECOVER_BURN:
                self._clean[slo.name] += 1
                if self._clean[slo.name] >= self.RECOVER_TICKS:
                    self._status[slo.name] = raw
                    self._clean[slo.name] = 0
            else:
                self._clean[slo.name] = 0
            status = self._status[slo.name]
            worst = max(worst, STATUS_ORDER.index(status))
            objectives.append({
                "name": slo.name,
                "kind": slo.kind,
                "family": slo.family,
                "labels": dict(slo.labels),
                "target": slo.target,
                "threshold_s": slo.threshold_s,
                "bad_fraction": frac_s,
                "window_total": total_s,
                "burn_short": burn_s,
                "burn_long": burn_l,
                "status": status,
                "description": slo.description,
            })
        return {"status": STATUS_ORDER[worst], "objectives": objectives}


def _baseline(points: deque, cutoff: float):
    """Newest ring point at or before ``cutoff`` (None = before the ring:
    the window extends past recorded history, so the delta baseline is
    zero — exactly right for a cold start)."""
    base = None
    for p in points:
        if p[0] <= cutoff:
            base = p
        else:
            break
    return base


# ---------------------------------------------------------------------------
# The sampler


class TelemetrySampler:
    """Samples a metrics registry into bounded time-series rings.

    ``source`` is a zero-argument callable returning the
    :class:`MetricsRegistry` to snapshot — a callable rather than a
    registry so sources that *build* a merged registry per read (the
    serve layer's ``merged_registry``) stay fresh.

    Drive it either with :meth:`start`/:meth:`stop` (daemon thread,
    ``interval`` seconds, used by the server) or by calling
    :meth:`tick` / :meth:`poke` manually (tests pass explicit ``now``
    values; the sweep engine pokes at plan boundaries).
    """

    def __init__(
        self,
        source: Callable[[], MetricsRegistry],
        *,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        log_path: str | Path | None = None,
        slos: Sequence[SLO] = (),
        gauge_sink: Callable[..., None] | None = None,
        baseline_zero: bool = False,
    ) -> None:
        self.source = source
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.log_path = Path(log_path) if log_path else None
        #: True when the source registry is known fresh (its counters
        #: genuinely started at zero under this sampler), so a series'
        #: first point can report its full value as the delta.  False
        #: for long-lived sources (the serve registry survives server
        #: restarts in one process) where that would be a spurious
        #: spike dwarfing every real rate.
        self.baseline_zero = baseline_zero
        self.slo_engine = SLOEngine(slos)
        self.gauge_sink = gauge_sink
        self.samples = 0
        self.started_at: float | None = None
        self._lock = threading.Lock()
        self._series: dict[str, dict[tuple, deque]] = {}
        self._kinds: dict[str, str] = {}
        self._bounds: dict[str, tuple[float, ...]] = {}
        self._last_t: float | None = None
        self._slo_doc: dict = {"status": "ok", "objectives": []}
        self._log_file = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- internals ------------------------------------------------------

    def _series_for(self, name: str) -> list[tuple[dict, deque]]:
        fam = self._series.get(name, {})
        return [(dict(k), pts) for k, pts in fam.items()]

    def _ring(self, name: str, key: tuple) -> deque:
        fam = self._series.setdefault(name, {})
        ring = fam.get(key)
        if ring is None:
            ring = fam[key] = deque(maxlen=self.capacity)
        return ring

    # -- sampling -------------------------------------------------------

    def tick(self, now: float | None = None) -> dict:
        """Take one sample; returns the JSONL-shaped record.

        Counter points carry the cumulative value plus the delta and
        per-second rate versus the previous point of the *same series*.
        A series' first point diffs against zero when ``baseline_zero``
        (fresh registry) and reads as delta 0 otherwise — for a
        long-lived source, a full-value first delta would be a spurious
        spike dwarfing every real rate on the sparkline.
        """
        if now is None:
            now = time.time()
        reg = self.source()
        with self._lock:
            if self.started_at is None:
                self.started_at = now
            dt = (now - self._last_t) if self._last_t is not None else None
            record: dict = {
                "ts": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now)),
                "t": now,
                "dt": dt,
                "counters": {},
                "gauges": {},
                "histograms": {},
            }
            for name in reg.names():
                kind = reg.kind(name)
                self._kinds[name] = kind
                rows = []
                for labels, v in reg.samples(name):
                    key = tuple(sorted(labels.items()))
                    ring = self._ring(name, key)
                    if kind == "histogram":
                        assert isinstance(v, HistogramValue)
                        self._bounds[name] = v.bounds
                        ring.append((now, tuple(v.counts), v.total, v.count))
                        rows.append({
                            "labels": labels,
                            "counts": list(v.counts),
                            "sum": v.total,
                            "count": v.count,
                            "quantiles": {
                                "p50": v.quantile(0.50),
                                "p95": v.quantile(0.95),
                                "p99": v.quantile(0.99),
                            },
                        })
                    elif kind == "counter":
                        prev = ring[-1] if ring else None
                        if prev is not None:
                            delta, span = v - prev[1], now - prev[0]
                        elif self.baseline_zero:
                            delta, span = v, now - self.started_at
                        else:
                            delta = span = 0.0
                        rate = (delta / span) if span > 0 else 0.0
                        ring.append((now, v, delta, rate))
                        rows.append({
                            "labels": labels,
                            "value": v,
                            "delta": delta,
                            "rate": rate,
                        })
                    else:  # gauge
                        ring.append((now, v))
                        rows.append({"labels": labels, "value": v})
                record[
                    "histograms" if kind == "histogram"
                    else "counters" if kind == "counter"
                    else "gauges"
                ][name] = rows
            self._last_t = now
            self.samples += 1
            self._slo_doc = self.slo_engine.evaluate(self, now)
            record["slo"] = self._slo_doc
            if self.gauge_sink is not None:
                for obj in self._slo_doc["objectives"]:
                    self.gauge_sink(
                        "serve_slo_burn_rate", obj["burn_short"], slo=obj["name"]
                    )
                    self.gauge_sink(
                        "serve_slo_status",
                        float(STATUS_ORDER.index(obj["status"])),
                        slo=obj["name"],
                    )
            if self.log_path is not None:
                if self._log_file is None:
                    self.log_path.parent.mkdir(parents=True, exist_ok=True)
                    self._log_file = open(self.log_path, "a", encoding="utf-8")
                self._log_file.write(json.dumps(record) + "\n")
                self._log_file.flush()
        return record

    def poke(self) -> None:
        """Opportunistic sample (engine plan-boundary hook).

        Rate-limited to the sampling interval so a burst of short plans
        cannot flood the ring; a no-op failure-proof call — pokes must
        never take the host down.
        """
        try:
            with self._lock:
                last = self._last_t
            if last is not None and (time.time() - last) < self.interval:
                return
            self.tick()
        except Exception:  # pragma: no cover - defensive
            pass

    # -- health & payload ----------------------------------------------

    def slo_status(self) -> dict:
        with self._lock:
            return dict(self._slo_doc)

    def series(self, name: str, **labels):
        """The ring for one series (a list copy), for tests/tools."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            fam = self._series.get(name, {})
            ring = fam.get(key)
            return list(ring) if ring is not None else []

    def payload(self) -> dict:
        """The ``GET /telemetry`` body: every ring, dashboard-shaped.

        Counter series points are ``[t, rate]``, gauge points
        ``[t, value]``, histogram points ``[t, observations/s]`` with
        current quantiles and windowed per-bucket activity alongside
        (the heat-strip input).
        """
        with self._lock:
            families: dict = {}
            for name, fam in sorted(self._series.items()):
                kind = self._kinds.get(name, "gauge")
                series = []
                for key, ring in sorted(fam.items()):
                    pts = list(ring)
                    if not pts:
                        continue
                    row: dict = {"labels": dict(key)}
                    if kind == "counter":
                        row["points"] = [
                            [round(t, 3), rate] for t, _, _, rate in pts
                        ]
                        row["last"] = pts[-1][1]
                    elif kind == "gauge":
                        row["points"] = [[round(t, 3), v] for t, v in pts]
                        row["last"] = pts[-1][1]
                    else:
                        rates = []
                        for i, p in enumerate(pts):
                            if i == 0:
                                rates.append([round(p[0], 3), 0.0])
                                continue
                            span = p[0] - pts[i - 1][0]
                            d = p[3] - pts[i - 1][3]
                            rates.append(
                                [round(p[0], 3), (d / span) if span > 0 else 0.0]
                            )
                        row["points"] = rates
                        row["last"] = pts[-1][3]
                        bounds = self._bounds.get(name, ())
                        latest, oldest = pts[-1], pts[0]
                        row["buckets"] = {
                            "bounds": list(bounds),
                            "recent": [
                                a - b for a, b in zip(latest[1], oldest[1])
                            ] if len(pts) > 1 else list(latest[1]),
                        }
                        row["quantiles"] = {
                            "p50": bucket_quantile(bounds, latest[1], 0.50),
                            "p95": bucket_quantile(bounds, latest[1], 0.95),
                            "p99": bucket_quantile(bounds, latest[1], 0.99),
                        }
                    series.append(row)
                if series:
                    families[name] = {"kind": kind, "series": series}
            return {
                "interval_s": self.interval,
                "capacity": self.capacity,
                "samples": self.samples,
                "started_at": self.started_at,
                "now": self._last_t,
                "slo": dict(self._slo_doc),
                "families": families,
            }

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the daemon sampling thread (no-op when interval <= 0)."""
        if self.interval <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # pragma: no cover - keep sampling alive
                pass

    def stop(self) -> None:
        """Stop the thread, take one final flush sample, close the log."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.tick()
        except Exception:  # pragma: no cover - defensive
            pass
        with self._lock:
            if self._log_file is not None:
                self._log_file.close()
                self._log_file = None


@contextmanager
def sampling(
    *,
    interval: float = DEFAULT_INTERVAL,
    capacity: int = DEFAULT_CAPACITY,
    log_path: str | Path | None = None,
    slos: Sequence[SLO] = (),
    registry: MetricsRegistry | None = None,
) -> Iterator[TelemetrySampler]:
    """Collect session metrics *and* sample them continuously.

    The in-process flavor used by ``repro sweep --telemetry``: installs
    a :func:`~repro.obs.metrics.collecting` scope so the engine's
    instrumentation lights up, starts a sampler over that registry, and
    guarantees a final flush sample on exit even if the block raises.
    """
    reg = registry if registry is not None else MetricsRegistry()
    sampler = TelemetrySampler(
        lambda: reg,
        interval=interval,
        capacity=capacity,
        log_path=log_path,
        slos=slos,
        baseline_zero=registry is None,
    )
    with collecting(reg):
        sampler.tick()  # t0 baseline: later first-points get real spans
        sampler.start()
        try:
            yield sampler
        finally:
            sampler.stop()


# ---------------------------------------------------------------------------
# Offline log analysis (``repro telemetry``)


def read_log(path: str | Path) -> list[dict]:
    """Parse a telemetry JSONL file; skips malformed lines."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def summarize_log(records: Sequence[dict]) -> dict:
    """Roll a telemetry log up into a report-friendly summary.

    Counters report total delta and peak rate, gauges last/min/max,
    histograms final count and quantiles, and the SLO section counts
    samples spent in each status plus the worst burn seen per
    objective.
    """
    summary: dict = {
        "samples": len(records),
        "duration_s": 0.0,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "slo": {"statuses": {}, "objectives": {}},
    }
    if not records:
        return summary
    t0, t1 = records[0].get("t"), records[-1].get("t")
    if isinstance(t0, (int, float)) and isinstance(t1, (int, float)):
        summary["duration_s"] = max(0.0, t1 - t0)
    for rec in records:
        for name, rows in rec.get("counters", {}).items():
            for row in rows:
                lk = json.dumps(row.get("labels", {}), sort_keys=True)
                slot = summary["counters"].setdefault(name, {}).setdefault(
                    lk, {"labels": row.get("labels", {}),
                         "delta": 0.0, "peak_rate": 0.0, "last": 0.0}
                )
                slot["delta"] += row.get("delta", 0.0) or 0.0
                slot["peak_rate"] = max(slot["peak_rate"], row.get("rate", 0.0) or 0.0)
                slot["last"] = row.get("value", slot["last"])
        for name, rows in rec.get("gauges", {}).items():
            for row in rows:
                lk = json.dumps(row.get("labels", {}), sort_keys=True)
                v = row.get("value", 0.0)
                slot = summary["gauges"].setdefault(name, {}).setdefault(
                    lk, {"labels": row.get("labels", {}),
                         "last": v, "min": v, "max": v}
                )
                slot["last"] = v
                slot["min"] = min(slot["min"], v)
                slot["max"] = max(slot["max"], v)
        for name, rows in rec.get("histograms", {}).items():
            for row in rows:
                lk = json.dumps(row.get("labels", {}), sort_keys=True)
                summary["histograms"].setdefault(name, {})[lk] = {
                    "labels": row.get("labels", {}),
                    "count": row.get("count", 0),
                    "sum": row.get("sum", 0.0),
                    "quantiles": row.get("quantiles", {}),
                }
        slo = rec.get("slo") or {}
        status = slo.get("status", "ok")
        summary["slo"]["statuses"][status] = (
            summary["slo"]["statuses"].get(status, 0) + 1
        )
        for obj in slo.get("objectives", []):
            slot = summary["slo"]["objectives"].setdefault(
                obj["name"], {"worst_burn": 0.0, "worst_status": "ok"}
            )
            slot["worst_burn"] = max(slot["worst_burn"], obj.get("burn_short", 0.0))
            if STATUS_ORDER.index(obj.get("status", "ok")) > STATUS_ORDER.index(
                slot["worst_status"]
            ):
                slot["worst_status"] = obj["status"]
    # Flatten single-label-set families for readability.
    for kind in ("counters", "gauges", "histograms"):
        summary[kind] = {
            name: list(by_label.values())
            for name, by_label in summary[kind].items()
        }
    return summary
