"""Self-contained performance report: one HTML file, zero dependencies.

``python -m repro report -o report.html`` renders everything the repo
knows about the reproduction into a **single file** — inline CSS, a few
lines of inline JS, no network fetches, no external assets — so the
artifact CI uploads opens anywhere:

- the platform-model summary table;
- the paper-fidelity scorecard (:mod:`repro.obs.fidelity`) with every
  entry's model-vs-paper relative error;
- all nine regenerated figures with the paper's published values
  alongside, each paired with its fidelity view;
- per application: the simulated one-iteration timeline (kernel and MPI
  segments to scale), the per-kernel breakdown table, the attribution
  tree (:mod:`repro.obs.attribution`), and the ranked differential
  contributors (:mod:`repro.obs.diff`) of the Xeon MAX's advantage over
  the 8360Y and the EPYC.

The markdown path (:func:`render_markdown`) is the former
``scripts/generate_report.py`` folded into this layer — byte-compatible
with the committed ``report.md`` — so there is exactly one render stack
behind both formats; the script remains as a thin wrapper.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

__all__ = [
    "report_data",
    "render_markdown",
    "render_html",
    "write_report",
]


# ---------------------------------------------------------------------------
# markdown (the former scripts/generate_report.py, byte-compatible)


def render_markdown() -> str:
    """The classic all-figures markdown report (``report.md``).

    Byte-compatible with what ``scripts/generate_report.py`` wrote
    before it was folded onto this layer — the artifact to diff when
    iterating on the model.
    """
    from ..harness import all_figures
    from ..machine import ALL_PLATFORMS
    from ..mem import HierarchyModel

    lines = [
        "# Reproduction report",
        "",
        "Paper: *Comparative evaluation of bandwidth-bound applications on "
        "the Intel Xeon CPU MAX Series* (I. Z. Reguly, SC-W/PMBS 2023).",
        "",
        "## Platform models",
        "",
        "| platform | cores | STREAM GB/s | peak FP32 TFLOPS | cache:mem |",
        "|---|---|---|---|---|",
    ]
    for p in ALL_PLATFORMS:
        ratio = HierarchyModel(p).cache_to_memory_ratio()
        lines.append(
            f"| {p.name} | {p.total_cores} | {p.stream_bandwidth / 1e9:.0f} "
            f"| {p.peak_flops(4) / 1e12:.1f} | {ratio:.1f}x |"
        )
    lines.append("")
    for fig in all_figures():
        lines.append(f"## {fig.figure}: {fig.title}")
        lines.append("")
        lines.append("```")
        lines.append(fig.render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# data collection


def report_data() -> dict:
    """Everything the HTML report renders, computed once.

    All sweeps route through the process-default engine, so a warm
    result store makes this cheap; keys:

    - ``platforms``: per-platform summary rows;
    - ``figures``: the nine :class:`~repro.harness.report.FigureResult`
      objects;
    - ``scorecard``: the :class:`~repro.obs.fidelity.Scorecard`;
    - ``apps``: per app, per platform ``(config, estimate, tree)`` from
      :func:`repro.harness.runner.best_attribution`, plus the
      cross-platform diffs of the MAX against the other CPUs.
    """
    from ..apps import APP_ORDER
    from ..harness import all_figures, best_attribution
    from ..machine import ALL_PLATFORMS, XEON_MAX_9480
    from ..mem import HierarchyModel
    from .diff import diff_trees
    from .fidelity import scorecard

    platforms = [
        {
            "short_name": p.short_name,
            "name": p.name,
            "cores": p.total_cores,
            "stream_gbs": p.stream_bandwidth / 1e9,
            "peak_tflops": p.peak_flops(4) / 1e12,
            "cache_ratio": HierarchyModel(p).cache_to_memory_ratio(),
        }
        for p in ALL_PLATFORMS
    ]
    figures = all_figures()
    card = scorecard()

    apps = {}
    for name in APP_ORDER:
        runs = {}
        for p in ALL_PLATFORMS:
            cfg, est, tree = best_attribution(name, p)
            runs[p.short_name] = {"config": cfg, "estimate": est, "tree": tree}
        diffs = {
            other: diff_trees(
                runs[XEON_MAX_9480.short_name]["tree"], runs[other]["tree"]
            )
            for other in ("icx8360y", "epyc7v73x")
        }
        apps[name] = {"runs": runs, "diffs": diffs}
    return {
        "platforms": platforms,
        "figures": figures,
        "scorecard": card,
        "apps": apps,
    }


# ---------------------------------------------------------------------------
# HTML rendering helpers


def _esc(v) -> str:
    return _html.escape(str(v))


def _num(v) -> str:
    """Human cell formatting, mirroring the text tables."""
    if v is None:
        return "–"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


def _table(columns, rows, caption: str | None = None) -> str:
    head = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(_num(v))}</td>" for v in row) + "</tr>"
        for row in rows
    )
    cap = f"<caption>{_esc(caption)}</caption>" if caption else ""
    return (f"<table>{cap}<thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table>")


_LIMB_COLORS = {
    "bandwidth": "#4878cf",
    "compute": "#ee854a",
    "latency": "#956cb4",
    "mpi": "#6acc65",
    "wait": "#d65f5f",
}


def _timeline_svg(est) -> str:
    """One modeled iteration as an SVG bar: kernel segments colored by
    winning limb, then the MPI phase (comm + imbalance wait)."""
    per_iter = sum(lt.time for lt in est.per_loop)
    n = max(round(est.compute_time / per_iter), 1) if per_iter > 0 else 1
    mpi_per_iter = est.mpi_time / n
    comm = est.comm.time_per_iter
    wait = max(mpi_per_iter - comm, 0.0)
    total = per_iter + mpi_per_iter
    if total <= 0:
        return "<p>(no modeled time)</p>"
    width, height = 900.0, 34
    rects, x = [], 0.0

    def rect(dt, color, label):
        nonlocal x
        w = dt / total * width
        if w <= 0:
            return
        rects.append(
            f'<rect x="{x:.2f}" y="4" width="{max(w, 0.75):.2f}" '
            f'height="24" fill="{color}"><title>{_esc(label)}</title></rect>'
        )
        x += w

    for lt in est.per_loop:
        rect(lt.time, _LIMB_COLORS[lt.bottleneck],
             f"{lt.name}: {lt.time:.4g} s/iter ({lt.bottleneck}-bound, "
             f"served from {lt.mem_level})")
    if comm > 0:
        rect(comm, _LIMB_COLORS["mpi"], f"MPI halo exchange: {comm:.4g} s/iter")
    if wait > 0:
        rect(wait, _LIMB_COLORS["wait"], f"MPI imbalance wait: {wait:.4g} s/iter")
    return (
        f'<svg viewBox="0 0 {width:.0f} {height}" class="timeline" '
        f'role="img" aria-label="one modeled iteration">'
        + "".join(rects) + "</svg>"
        + f"<p class=small>one iteration = {total:.4g} s modeled "
        f"({n} iterations total); hover segments for detail</p>"
    )


def _tree_html(node, root_seconds: float) -> str:
    pct = (node.seconds / root_seconds * 100) if root_seconds else 0.0
    label = (f"<span class=node-name>{_esc(node.name)}</span> "
             f"<span class=node-sec>{node.seconds:.4g} s</span> "
             f"<span class=node-pct>{pct:.1f}%</span>")
    if node.is_leaf:
        return f"<li class=leaf data-kind={_esc(node.kind)}>{label}</li>"
    inner = "".join(_tree_html(c, root_seconds) for c in node.children)
    return (f"<li><details open><summary>{label}</summary>"
            f"<ul>{inner}</ul></details></li>")


def _diff_html(diff, other: str) -> str:
    rows_kind = [(k, f"{d:+.4g}") for k, d in diff.by_kind()]
    top = [
        (" / ".join(c.key), c.label, c.seconds_a, c.seconds_b, f"{c.delta:+.4g}")
        for c in diff.contributors[:8]
    ]
    return (
        f"<p><b>max9480 {diff.total_a:.4g} s</b> vs <b>{_esc(other)} "
        f"{diff.total_b:.4g} s</b> — the MAX is "
        f"<b>{diff.speedup:.2f}&times;</b> faster; "
        f"delta {diff.delta:+.4g} s decomposes as:</p>"
        + _table(("limb", "delta s"), rows_kind,
                 f"contributions by kind (max9480 vs {other})")
        + _table(("leaf", "label", "max9480 s", f"{other} s", "delta s"),
                 top, "top leaf contributors")
    )


_CSS = """
:root { color-scheme: light; }
body { font: 15px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
h1, h2, h3 { line-height: 1.2; }
h2 { border-bottom: 2px solid #e4e4e4; padding-bottom: .25rem;
     margin-top: 2.5rem; }
table { border-collapse: collapse; margin: .75rem 0; font-size: .92em; }
caption { caption-side: top; text-align: left; font-weight: 600;
          padding-bottom: .25rem; }
th, td { border: 1px solid #d8d8d8; padding: .25rem .55rem;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead th { background: #f3f3f3; }
pre { background: #f7f7f7; padding: .75rem; overflow-x: auto;
      font-size: .85em; }
.timeline { width: 100%; height: 34px; background: #f3f3f3;
            border-radius: 4px; }
.small { color: #666; font-size: .85em; margin-top: .15rem; }
.tree ul { list-style: none; padding-left: 1.25rem; margin: 0; }
.tree > ul { padding-left: 0; }
.tree summary { cursor: pointer; }
.node-sec { color: #4878cf; font-variant-numeric: tabular-nums; }
.node-pct { color: #888; font-size: .85em; }
.leaf[data-kind=memory] .node-name { color: #4878cf; }
.leaf[data-kind=compute] .node-name { color: #b35c00; }
.leaf[data-kind=latency] .node-name { color: #956cb4; }
.leaf[data-kind^=mpi] .node-name { color: #2e7d32; }
.verdict-pass { color: #2e7d32; font-weight: 600; }
.verdict-fail { color: #c62828; font-weight: 600; }
nav a { margin-right: .8rem; }
button { font: inherit; padding: .15rem .6rem; }
"""

_JS = """
function setDetails(open) {
  document.querySelectorAll('details').forEach(d => d.open = open);
}
"""


def render_html(data: dict | None = None) -> str:
    """Render the complete report as one self-contained HTML page."""
    if data is None:
        data = report_data()
    card = data["scorecard"]
    card_dict = card.as_dict()
    parts = [
        "<!doctype html><html lang=en><head><meta charset=utf-8>",
        "<meta name=viewport content='width=device-width, initial-scale=1'>",
        "<title>repro — performance report</title>",
        f"<style>{_CSS}</style><script>{_JS}</script></head><body>",
        "<h1>repro — Xeon CPU MAX reproduction report</h1>",
        "<p>Paper: <i>Comparative evaluation of bandwidth-bound "
        "applications on the Intel Xeon CPU MAX Series</i> "
        "(I. Z. Reguly, SC-W/PMBS 2023). Every number below is produced "
        "by the in-repo model stack; self-contained file, no external "
        "assets.</p>",
        "<nav><a href='#platforms'>platforms</a>"
        "<a href='#fidelity'>fidelity</a><a href='#figures'>figures</a>"
        "<a href='#apps'>applications</a> "
        "<button onclick='setDetails(true)'>expand all</button> "
        "<button onclick='setDetails(false)'>collapse all</button></nav>",
    ]

    # --- platforms ---------------------------------------------------------
    parts.append("<h2 id=platforms>Platform models</h2>")
    parts.append(_table(
        ("platform", "cores", "STREAM GB/s", "peak FP32 TFLOPS", "cache:mem"),
        [(p["name"], p["cores"], f"{p['stream_gbs']:.0f}",
          f"{p['peak_tflops']:.1f}", f"{p['cache_ratio']:.1f}x")
         for p in data["platforms"]],
    ))

    # --- fidelity summary --------------------------------------------------
    overall = ("<span class=verdict-pass>PASS</span>" if card.passed
               else "<span class=verdict-fail>FAIL</span>")
    parts.append(f"<h2 id=fidelity>Paper-fidelity scorecard</h2>"
                 f"<p>Overall: {overall} against "
                 f"<code>baselines/fidelity.json</code> thresholds.</p>")
    rows = []
    for s in card.scores:
        fig = card_dict["figures"][s.figure]
        rows.append((
            s.figure, len(s.entries), f"{s.max_abs_rel_err:.3f}",
            f"{s.mean_abs_rel_err:.3f}",
            "–" if s.rank_agreement is None else f"{s.rank_agreement:.2f}",
            fig["verdict"],
        ))
    parts.append(_table(
        ("figure", "entries", "max |rel err|", "mean |rel err|",
         "rank agreement", "verdict"), rows))

    # --- figures with their fidelity views ---------------------------------
    parts.append("<h2 id=figures>Figures — model vs paper</h2>")
    scores = {s.figure: s for s in card.scores}
    for fig in data["figures"]:
        parts.append(f"<h3 id={fig.figure}>{_esc(fig.figure)}: "
                     f"{_esc(fig.title)}</h3>")
        parts.append(_table(fig.columns, fig.rows))
        for note in fig.notes:
            parts.append(f"<p class=small>note: {_esc(note)}</p>")
        s = scores.get(fig.figure)
        if s is not None and s.entries:
            parts.append("<details><summary>fidelity view "
                         f"({len(s.entries)} scored entries)</summary>")
            parts.append(_table(
                ("entry", "model", "paper", "rel err"),
                [(e.label, f"{e.model:.3f}", e.reference_str(),
                  f"{e.rel_err:+.3f}") for e in s.entries],
            ))
            parts.append("</details>")

    # --- per-application attribution ---------------------------------------
    parts.append("<h2 id=apps>Applications — attribution and diffs</h2>")
    parts.append("<p>Best-configuration runs per platform; trees "
                 "decompose each estimate additively (leaves sum to the "
                 "total), diffs rank what the Xeon MAX's advantage is "
                 "made of. See <code>python -m repro explain</code> for "
                 "the CLI view.</p>")
    for name, entry in data["apps"].items():
        parts.append(f"<h3 id=app-{_esc(name)}>{_esc(name)}</h3>")
        runs = entry["runs"]
        parts.append(_table(
            ("platform", "best configuration", "total s", "compute s",
             "MPI s", "effBW GB/s"),
            [(short, r["config"].label(), f"{r['estimate'].total_time:.4g}",
              f"{r['estimate'].compute_time:.4g}",
              f"{r['estimate'].mpi_time:.4g}",
              f"{r['estimate'].effective_bandwidth / 1e9:.0f}")
             for short, r in runs.items()],
        ))
        max_run = runs["max9480"]
        parts.append(_timeline_svg(max_run["estimate"]))
        parts.append("<details><summary>kernel breakdown (max9480)"
                     "</summary>")
        from .breakdown import kernel_breakdown

        cols, brows = kernel_breakdown(max_run["estimate"])
        parts.append(_table(cols, brows))
        parts.append("</details>")
        tree = max_run["tree"]
        parts.append("<details><summary>attribution tree (max9480, "
                     f"{tree.seconds:.4g} s)</summary><div class=tree><ul>"
                     + _tree_html(tree, tree.seconds)
                     + "</ul></div></details>")
        for other, diff in entry["diffs"].items():
            parts.append(f"<details><summary>differential: max9480 vs "
                         f"{_esc(other)} ({diff.speedup:.2f}&times;)"
                         "</summary>"
                         + _diff_html(diff, other) + "</details>")

    from ..engine.store import model_version

    parts.append(f"<hr><p class=small>model version "
                 f"<code>{_esc(model_version())}</code>; generated by "
                 "<code>python -m repro report</code>.</p>")
    parts.append("</body></html>")
    return "".join(parts)


def write_report(path: str | Path, fmt: str | None = None) -> Path:
    """Write the report to ``path``.

    ``fmt`` is ``"html"`` or ``"md"``; default inferred from the suffix
    (``.md``/``.markdown`` → markdown, anything else → HTML).
    """
    p = Path(path)
    if fmt is None:
        fmt = "md" if p.suffix in (".md", ".markdown") else "html"
    if fmt == "md":
        text = render_markdown()
    elif fmt == "html":
        text = render_html()
    else:
        raise ValueError(f"unknown report format {fmt!r} (html or md)")
    p.write_text(text)
    return p


def _selftest_no_network(html_text: str) -> bool:
    """True when the document references no external resource — the
    self-containment property the tests and CI assert."""
    lowered = html_text.lower()
    return not any(
        marker in lowered
        for marker in ("http://", "https://", "src=\"//", "href=\"//",
                       "@import", "url(")
    )
