"""Differential performance attribution: additive trees over estimates.

An :class:`~repro.perfmodel.roofline.AppEstimate` states *how long* a
run takes; the paper's analysis is about *why* — which limb (HBM
bandwidth, cache plateau, vector ISA, MPI wait) each second belongs to,
and which limb a cross-platform delta comes from.  This module
decomposes an estimate into an **attribution tree**:

.. code-block:: text

    app (total seconds)
    ├── kernels                        (AppEstimate.compute_time)
    │   └── <loop> x iterations
    │       ├── memory[<level>]        bandwidth-limb seconds, labeled
    │       │                          with the hierarchy level that
    │       │                          served the working set
    │       ├── compute                vector/flop-limb seconds
    │       ├── latency                gather/irregular-access seconds
    │       └── overhead               per-invocation launch cost
    └── mpi                            (AppEstimate.mpi_time)
        ├── halo-wire                  serialization at link bandwidth
        ├── message-overhead           handshakes + software cost
        ├── collectives                reductions
        └── imbalance-wait             rank imbalance charged as MPI_Wait

Leaves are **additive**: per loop they come from
:meth:`~repro.perfmodel.roofline.LoopTime.limb_seconds` (the p-norm
blend projected back onto the clock, remainder-exact), per run the MPI
split comes from the simmpi cost accounting carried on
:class:`~repro.perfmodel.commmodel.CommEstimate`.  The tree invariant —
every leaf's seconds sum back to ``AppEstimate.total_time`` within
float epsilon — is what makes differential analysis
(:mod:`repro.obs.diff`) meaningful: a delta between two trees is a sum
of per-leaf deltas, nothing hides in a blend.

Trees build from any estimate — freshly computed or loaded back from
the engine's result store (:meth:`repro.engine.store.ResultStore.
estimates`) — so ``python -m repro explain`` can diff against history
as well as across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AttrNode",
    "attribute_estimate",
    "leaf_index",
    "WHAT_IF_KNOBS",
    "what_if",
]


@dataclass(frozen=True)
class AttrNode:
    """One node of an attribution tree.

    ``kind`` classifies the node: ``"app"``/``"group"``/``"loop"`` for
    interior nodes; ``"memory"``, ``"compute"``, ``"latency"``,
    ``"overhead"``, ``"mpi-wire"``, ``"mpi-overhead"``,
    ``"mpi-collective"``, ``"mpi-wait"`` for leaves.  ``meta`` carries
    display-only context (hierarchy level, memory technology, config
    label) that never participates in structural matching.
    """

    name: str
    kind: str
    seconds: float
    children: tuple["AttrNode", ...] = ()
    meta: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> list["AttrNode"]:
        if self.is_leaf:
            return [self]
        return [leaf for c in self.children for leaf in c.leaves()]

    def leaf_total(self) -> float:
        return sum(leaf.seconds for leaf in self.leaves())

    def walk(self, depth: int = 0):
        """Yield ``(depth, node)`` in pre-order."""
        yield depth, self
        for c in self.children:
            yield from c.walk(depth + 1)

    def max_additivity_error(self) -> float:
        """Worst relative |sum(children) - seconds| over interior nodes
        (and the root vs its leaf total) — the tree invariant, asserted
        to stay below 1e-9 for every app x platform pair."""
        worst = 0.0
        for _, node in self.walk():
            if node.is_leaf:
                continue
            child_sum = sum(c.seconds for c in node.children)
            scale = abs(node.seconds) or 1.0
            worst = max(worst, abs(child_sum - node.seconds) / scale)
        scale = abs(self.seconds) or 1.0
        worst = max(worst, abs(self.leaf_total() - self.seconds) / scale)
        return worst

    def as_dict(self) -> dict:
        d = {"name": self.name, "kind": self.kind, "seconds": self.seconds}
        if self.meta:
            d["meta"] = dict(self.meta)
        if self.children:
            d["children"] = [c.as_dict() for c in self.children]
        return d


# ---------------------------------------------------------------------------
# building trees from estimates


def _memory_kind(platform_short_name: str) -> str | None:
    """Main-memory technology label (``"hbm2e"``/``"ddr4"``) for a
    platform short name; None when the platform is unknown (e.g. a
    synthetic spec in tests)."""
    from ..machine import get_platform  # lazy: obs stays light

    try:
        return get_platform(platform_short_name).memory.kind.value
    except KeyError:
        return None


def _iterations(est) -> int:
    """Recover the iteration count an estimate was scaled by (the
    estimate stores totals; per-loop times are per invocation)."""
    per_iter = sum(lt.time for lt in est.per_loop)
    if per_iter <= 0:
        return 1
    return max(int(round(est.compute_time / per_iter)), 1)


def _loop_node(lt, n: int, mem_kind: str | None) -> AttrNode:
    limbs = lt.limb_seconds()
    children = []
    if limbs["bandwidth"] > 0:
        meta = {"level": lt.mem_level}
        if lt.mem_level == "memory" and mem_kind:
            meta["memory"] = mem_kind
        label = mem_kind if (lt.mem_level == "memory" and mem_kind) else lt.mem_level
        children.append(AttrNode(
            f"memory[{label}]", "memory", limbs["bandwidth"] * n, meta=meta,
        ))
    if limbs["compute"] > 0:
        children.append(AttrNode("compute", "compute", limbs["compute"] * n))
    if limbs["latency"] > 0:
        children.append(AttrNode("latency", "latency", limbs["latency"] * n))
    if lt.overhead > 0:
        children.append(AttrNode("overhead", "overhead", lt.overhead * n))
    return AttrNode(
        lt.name, "loop", lt.time * n, tuple(children),
        meta={"bottleneck": lt.bottleneck, "invocations": n},
    )


def attribute_estimate(est) -> AttrNode:
    """Decompose an :class:`~repro.perfmodel.roofline.AppEstimate` into
    its attribution tree (see the module docstring for the taxonomy).

    Works on any estimate object with the ``AppEstimate`` shape,
    including ones deserialized from the engine's result store; no model
    re-evaluation happens — every number is a projection of what the
    estimate already carries.
    """
    n = _iterations(est)
    mem_kind = _memory_kind(est.platform)

    loops = tuple(_loop_node(lt, n, mem_kind) for lt in est.per_loop)
    kernels = AttrNode("kernels", "group", est.compute_time, loops)

    children: list[AttrNode] = [kernels]
    if est.mpi_time > 0:
        comm = est.comm
        comm_total = comm.time_per_iter * n
        ovh = comm.overhead_per_iter * n
        coll = comm.collective_per_iter * n
        # Cluster estimates split the wire seconds further: messages that
        # crossed the inter-node network get their own leaf (getattr:
        # estimates stored before the field existed have no inter share).
        inter = getattr(comm, "internode_wire_per_iter", 0.0) * n
        wire = comm_total - ovh - coll - inter
        imbalance = est.mpi_time - comm_total
        mpi_children = []
        if wire > 0:
            mpi_children.append(AttrNode(
                "halo-wire", "mpi-wire", wire,
                meta={"bytes_per_iter": comm.volume_per_iter,
                      "messages_per_iter": comm.messages_per_iter},
            ))
        if inter > 0:
            mpi_children.append(AttrNode(
                "internode-wire", "mpi-internode", inter,
                meta={"note": "serialization on the cluster network"},
            ))
        if ovh > 0:
            mpi_children.append(AttrNode("message-overhead", "mpi-overhead", ovh))
        if coll > 0:
            mpi_children.append(AttrNode("collectives", "mpi-collective", coll))
        if imbalance != 0:
            mpi_children.append(AttrNode(
                "imbalance-wait", "mpi-wait", imbalance,
                meta={"note": "rank imbalance charged as MPI_Wait"},
            ))
        # Remainder-exactness: make the mpi children sum to mpi_time by
        # construction (imbalance is already mpi_time - comm_total; fold
        # any residual of the wire/ovh/coll split into the wire leaf).
        child_sum = sum(c.seconds for c in mpi_children)
        residual = est.mpi_time - child_sum
        if mpi_children and residual != 0.0:
            first = mpi_children[0]
            mpi_children[0] = AttrNode(
                first.name, first.kind, first.seconds + residual,
                first.children, first.meta,
            )
        children.append(AttrNode("mpi", "group", est.mpi_time,
                                 tuple(mpi_children)))

    return AttrNode(
        est.app, "app", est.total_time, tuple(children),
        meta={"platform": est.platform, "config": est.config_label,
              "iterations": n},
    )


def leaf_index(tree: AttrNode) -> dict[tuple[str, ...], AttrNode]:
    """Structural leaf index: ``("kernels", loop, kind)`` for kernel
    leaves, ``("mpi", kind)`` for MPI leaves.

    Keys are platform-independent (the memory level/technology lives in
    ``meta``, not the key), so two platforms' trees for the same app
    align leaf-for-leaf — the matching :func:`repro.obs.diff.diff_trees`
    ranks contributors over.
    """
    index: dict[tuple[str, ...], AttrNode] = {}
    for section in tree.children:
        if section.name == "kernels":
            for loop in section.children:
                for leaf in loop.children:
                    index[("kernels", loop.name, leaf.kind)] = leaf
        else:
            for leaf in section.children:
                index[(section.name, leaf.kind)] = leaf
    return index


# ---------------------------------------------------------------------------
# what-if projections


#: What-if knobs: each scales the *speed* of one resource by the given
#: factor, so the matching leaves' seconds divide by it (``inf`` zeroes
#: them — "what if MPI wait vanished").  Values map knob -> predicate
#: over leaves.
WHAT_IF_KNOBS: dict[str, str] = {
    "dram_bw": "memory leaves served from main memory (HBM or DDR)",
    "cache_bw": "memory leaves served from a cache level",
    "mem_bw": "every memory leaf regardless of serving level",
    "compute": "compute/vector leaves",
    "gather": "latency (irregular access) leaves",
    "loop_overhead": "per-invocation kernel overhead leaves",
    "net_bw": "MPI wire-serialization leaves (in-node and inter-node)",
    "internode_bw": "inter-node (cluster network) wire leaves only",
    "mpi": "every MPI leaf (wire, overhead, collectives, wait)",
    "mpi_wait": "rank-imbalance MPI_Wait leaves",
}


def _knob_matches(knob: str, leaf: AttrNode) -> bool:
    if knob == "dram_bw":
        return leaf.kind == "memory" and leaf.meta.get("level") == "memory"
    if knob == "cache_bw":
        return leaf.kind == "memory" and leaf.meta.get("level") != "memory"
    if knob == "mem_bw":
        return leaf.kind == "memory"
    if knob == "compute":
        return leaf.kind == "compute"
    if knob == "gather":
        return leaf.kind == "latency"
    if knob == "loop_overhead":
        return leaf.kind == "overhead"
    if knob == "net_bw":
        return leaf.kind in ("mpi-wire", "mpi-internode")
    if knob == "internode_bw":
        return leaf.kind == "mpi-internode"
    if knob == "mpi":
        return leaf.kind.startswith("mpi-")
    if knob == "mpi_wait":
        return leaf.kind == "mpi-wait"
    raise KeyError(
        f"unknown what-if knob {knob!r}; valid: {', '.join(WHAT_IF_KNOBS)}"
    )


def what_if(tree: AttrNode, knobs: dict[str, float]) -> AttrNode:
    """Re-evaluate a tree with perturbed limbs.

    Each knob scales its resource's speed by the factor: the matching
    leaves' seconds divide by it, and every interior node becomes the
    sum of its (new) children — so the projected root is exactly the
    sum of the projected leaves.  A factor of 1.0 is an exact no-op
    (``x / 1.0 == x`` in IEEE arithmetic); ``float("inf")`` zeroes the
    leaves.

    This is a *first-order* projection: the p-norm limb blend, the
    config choice, and cache residency are not re-derived — see
    "what-if limits" in docs/OBSERVABILITY.md.
    """
    for knob, factor in knobs.items():
        if knob not in WHAT_IF_KNOBS:
            raise KeyError(
                f"unknown what-if knob {knob!r}; valid: "
                f"{', '.join(WHAT_IF_KNOBS)}"
            )
        if not factor > 0:
            raise ValueError(f"what-if factor for {knob!r} must be > 0")

    def rebuild(node: AttrNode) -> AttrNode:
        if node.is_leaf:
            seconds = node.seconds
            for knob, factor in knobs.items():
                if _knob_matches(knob, node):
                    seconds = seconds / factor
            return AttrNode(node.name, node.kind, seconds, (), node.meta)
        children = tuple(rebuild(c) for c in node.children)
        return AttrNode(
            node.name, node.kind, sum(c.seconds for c in children),
            children, node.meta,
        )

    return rebuild(tree)
