"""Trace exporters: Chrome trace-event JSON and nesting validation.

:func:`chrome_trace` converts a :class:`~repro.obs.tracer.Tracer` into
the Chrome trace-event format (the JSON ``chrome://tracing`` and
Perfetto load).  Each track domain becomes a process row, each lane a
thread row; simulated-time domains are labeled as such so a reader
never mistakes virtual seconds for wall time.  Timestamps are exported
in microseconds (the format's native unit), so one simulated second is
1e6 ticks on the viewer timeline.

:func:`check_nesting` verifies the structural invariant the tests pin
down: on any single track, spans either nest or are disjoint — they
never partially overlap, because each track belongs to one sequential
actor (one rank, one worker, one timeline lane).
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import Span, Tracer, WALL_DOMAINS

__all__ = ["chrome_trace", "write_chrome_trace", "check_nesting"]

#: Spans shorter than this (seconds) still export with a minimal
#: duration so zero-cost records remain visible in the viewer.
_SECONDS_TO_US = 1e6


def _jsonable(value):
    """Reduce attribute values to JSON-serializable primitives."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        return _jsonable(item())
    return str(value)


def _track_ids(tracer: Tracer) -> dict[tuple, tuple[int, int]]:
    """Assign stable (pid, tid) integers to every (domain, lane) track."""
    domains: dict[str, int] = {}
    lanes: dict[tuple, tuple[int, int]] = {}
    per_domain: dict[str, dict] = {}
    for track in tracer.tracks():
        domain, lane = track
        pid = domains.setdefault(domain, len(domains) + 1)
        dlanes = per_domain.setdefault(domain, {})
        tid = dlanes.setdefault(lane, len(dlanes) + 1)
        lanes[track] = (pid, tid)
    return lanes


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's contents as a Chrome trace-event JSON object."""
    lanes = _track_ids(tracer)
    events: list[dict] = []

    named_pids: set[int] = set()
    for track, (pid, tid) in lanes.items():
        domain, lane = track
        if pid not in named_pids:
            named_pids.add(pid)
            clock = "wall clock" if domain in WALL_DOMAINS else "simulated time"
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"{domain} ({clock})"},
            })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": f"{domain}:{lane}"},
        })

    for s in tracer.spans:
        pid, tid = lanes[s.track]
        events.append({
            "ph": "X",
            "name": s.name,
            "cat": s.cat,
            "ts": s.start * _SECONDS_TO_US,
            "dur": s.duration * _SECONDS_TO_US,
            "pid": pid,
            "tid": tid,
            "args": _jsonable(s.attrs),
        })
    for e in tracer.events:
        pid, tid = lanes[e.track]
        events.append({
            "ph": "i",
            "s": "t",
            "name": e.name,
            "cat": e.cat,
            "ts": e.ts * _SECONDS_TO_US,
            "pid": pid,
            "tid": tid,
            "args": _jsonable(e.attrs),
        })

    # Stable ordering: metadata first (ph sorts M < X/i by insertion),
    # then by track and start time — viewers do not require it, diffs do.
    meta = [ev for ev in events if ev["ph"] == "M"]
    data = sorted(
        (ev for ev in events if ev["ph"] != "M"),
        key=lambda ev: (ev["pid"], ev["tid"], ev["ts"], ev["name"]),
    )
    return {
        "traceEvents": meta + data,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "spans": len(tracer.spans),
            "events": len(tracer.events),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1) + "\n")
    return path


def check_nesting(tracer: Tracer) -> None:
    """Raise ``ValueError`` unless spans on each track nest monotonely.

    Within one track, for any two spans A and B either one contains the
    other or they do not overlap.  A tiny relative tolerance absorbs
    float rounding of accumulated simulated clocks.
    """
    by_track: dict[tuple, list[Span]] = {}
    for s in tracer.spans:
        by_track.setdefault(s.track, []).append(s)
    for track, spans in by_track.items():
        spans.sort(key=lambda s: (s.start, -s.end))
        stack: list[Span] = []
        for s in spans:
            tol = 1e-12 * max(abs(s.end), 1.0)
            while stack and stack[-1].end <= s.start + tol:
                stack.pop()
            if stack and s.end > stack[-1].end + tol:
                raise ValueError(
                    f"track {track}: span {s.name!r} [{s.start}, {s.end}] "
                    f"overlaps {stack[-1].name!r} "
                    f"[{stack[-1].start}, {stack[-1].end}] without nesting"
                )
            stack.append(s)
