"""Span/event recording with simulated-time and wall-time domains.

A :class:`Tracer` collects :class:`Span` and :class:`TraceEvent` records
from every execution layer — the DSL parloop engines, the simulated MPI
runtime, the performance model and the sweep engine.  Two clock domains
coexist and are never mixed on one track:

* **simulated time** — virtual seconds from the DSLs' timing models and
  the simmpi virtual clocks.  These spans sit on the timeline a Chrome
  trace viewer shows; t=0 is the start of the traced run.
* **wall time** — real seconds for the sweep engine's job lifecycle
  (cache hits, evaluations, worker occupancy).  Recorded relative to the
  tracer's creation (:attr:`Tracer.wall_epoch`) via :meth:`Tracer.
  wall_span` / :meth:`Tracer.wall_event`, and exported under separate
  process groups so simulated spans never carry wall-clock numbers.

Scoping: :func:`tracing` installs a tracer in a :mod:`contextvars`
context variable; instrumentation sites call :func:`active_tracer`,
which is a no-op (module-global integer check, no ContextVar lookup)
when no tracer is installed anywhere in the process.  Tracing therefore
has zero overhead on untraced runs — the property the engine tests pin
down by asserting bit-identical sweep results and store contents.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "tracing",
]

#: Track domains whose timestamps are wall-clock seconds (relative to
#: the tracer's ``wall_epoch``); every other domain is simulated time.
#: "engine" carries the sweep engine's job lifecycle, "vec" the batched
#: evaluator's per-batch stages, "serve" the HTTP service's per-request
#: and per-shard spans.
WALL_DOMAINS = frozenset({"engine", "vec", "serve"})


@dataclass(frozen=True)
class Span:
    """One completed interval on one track.

    ``track`` is ``(domain, lane)``: the domain names the clock/subsystem
    ("ops", "rank", "timeline", "engine", ...) and the lane separates
    concurrent actors within it (a rank number, a worker name).
    """

    cat: str
    name: str
    start: float
    end: float
    track: tuple[str, int | str] = ("model", 0)
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_wall(self) -> bool:
        return self.track[0] in WALL_DOMAINS


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous mark on one track."""

    cat: str
    name: str
    ts: float
    track: tuple[str, int | str] = ("model", 0)
    attrs: dict = field(default_factory=dict)

    @property
    def is_wall(self) -> bool:
        return self.track[0] in WALL_DOMAINS


class Tracer:
    """Thread-safe collector of spans and events.

    Append-only; recording never mutates anything the model reads, so an
    installed tracer cannot change results.  Spans validate
    ``end >= start`` at record time — simulated clocks only move
    forward, so a violation is an instrumentation bug worth failing on.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        #: perf_counter origin of the wall-time domain.
        self.wall_epoch = time.perf_counter()
        self._lock = threading.Lock()

    # ---- recording (simulated-time domain) ---------------------------

    def span(
        self,
        cat: str,
        name: str,
        start: float,
        end: float,
        track: tuple[str, int | str] = ("model", 0),
        **attrs,
    ) -> Span:
        if end < start:
            raise ValueError(f"span {name!r}: end {end} before start {start}")
        s = Span(cat, name, float(start), float(end), track, attrs)
        with self._lock:
            self.spans.append(s)
        return s

    def event(
        self,
        cat: str,
        name: str,
        ts: float,
        track: tuple[str, int | str] = ("model", 0),
        **attrs,
    ) -> TraceEvent:
        e = TraceEvent(cat, name, float(ts), track, attrs)
        with self._lock:
            self.events.append(e)
        return e

    # ---- recording (wall-time domain) --------------------------------

    def wall_span(
        self,
        cat: str,
        name: str,
        t0: float,
        t1: float,
        track: tuple[str, int | str] = ("engine", 0),
        **attrs,
    ) -> Span:
        """Record a span from two ``time.perf_counter()`` readings."""
        return self.span(
            cat, name, t0 - self.wall_epoch, t1 - self.wall_epoch, track, **attrs
        )

    def wall_event(
        self,
        cat: str,
        name: str,
        t: float,
        track: tuple[str, int | str] = ("engine", 0),
        **attrs,
    ) -> TraceEvent:
        """Record an event from a ``time.perf_counter()`` reading."""
        return self.event(cat, name, t - self.wall_epoch, track, **attrs)

    # ---- inspection ---------------------------------------------------

    def tracks(self) -> list[tuple[str, int | str]]:
        """Every distinct track, in first-appearance order."""
        seen: dict[tuple, None] = {}
        with self._lock:
            for s in self.spans:
                seen.setdefault(s.track)
            for e in self.events:
                seen.setdefault(e.track)
        return list(seen)

    def spans_of(self, cat: str | None = None, name: str | None = None) -> list[Span]:
        with self._lock:
            out = list(self.spans)
        if cat is not None:
            out = [s for s in out if s.cat == cat]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def events_of(self, cat: str | None = None, name: str | None = None) -> list[TraceEvent]:
        with self._lock:
            out = list(self.events)
        if cat is not None:
            out = [e for e in out if e.cat == cat]
        if name is not None:
            out = [e for e in out if e.name == name]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans) + len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer {len(self.spans)} spans, {len(self.events)} events>"


# ---------------------------------------------------------------------------
# Installation

_tracer_var: ContextVar[Tracer | None] = ContextVar("repro_tracer", default=None)
#: Count of live ``tracing()`` scopes process-wide.  The hot-path guard:
#: while zero, :func:`active_tracer` returns without touching the
#: ContextVar, so instrumented code costs one global read when disabled.
_install_count = 0


def active_tracer() -> Tracer | None:
    """The tracer installed in the current context, or None.

    This is the only call instrumentation sites make on untraced runs;
    it must stay allocation-free and branch-predictable.
    """
    if _install_count == 0:
        return None
    return _tracer_var.get()


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) for the duration of the block.

    Scoped via ContextVar: nested blocks shadow outer ones, and thread
    pools that propagate contexts (the sweep executor does) see the
    installing thread's tracer.
    """
    global _install_count
    tr = tracer if tracer is not None else Tracer()
    token = _tracer_var.set(tr)
    _install_count += 1
    try:
        yield tr
    finally:
        _install_count -= 1
        _tracer_var.reset(token)
