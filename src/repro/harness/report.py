"""Plain-text table rendering for the figure harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["FigureResult", "format_table", "render_breakdown"]


def _fmt(v: Any) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


def format_table(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render rows as an aligned text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    def line(parts):
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths)).rstrip()

    out = [line(columns), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def render_breakdown(summary: dict) -> str:
    """Render a :func:`repro.obs.breakdown.summary_dict` as text: run
    headline, then the per-kernel table (``python -m repro trace``'s
    ``--table`` output)."""
    head = (
        f"== {summary['app']} on {summary['platform']} ({summary['config']}) ==\n"
        f"total {_fmt(summary['total_time'])} s "
        f"(compute {_fmt(summary['compute_time'])} s, "
        f"MPI {_fmt(summary['mpi_time'])} s = "
        f"{summary['mpi_fraction'] * 100:.1f}%)\n"
        f"effective bandwidth {summary['effective_bandwidth'] / 1e9:.1f} GB/s, "
        f"achieved {summary['achieved_flops'] / 1e9:.1f} GFLOP/s"
    )
    columns = (
        "loop", "time", "t_bandwidth", "t_compute", "t_latency",
        "overhead", "counted_bytes", "flops", "bottleneck",
    )
    rows = [
        (
            l["name"], l["time"], l["t_bandwidth"], l["t_compute"],
            l["t_latency"], l["overhead"], l["counted_bytes"], l["flops"],
            l["bottleneck"],
        )
        for l in summary["loops"]
    ]
    return f"{head}\n{format_table(columns, rows)}"


@dataclass
class FigureResult:
    """One regenerated table/figure: data rows plus paper context."""

    figure: str  # e.g. "fig6"
    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        head = f"== {self.figure}: {self.title} =="
        body = format_table(self.columns, self.rows)
        tail = "".join(f"\n  note: {n}" for n in self.notes)
        return f"{head}\n{body}{tail}"

    def column(self, name: str) -> list:
        i = self.columns.index(name)
        return [r[i] for r in self.rows]

    def row_map(self, key_col: int = 0) -> dict:
        return {r[key_col]: r for r in self.rows}

    def to_csv(self) -> str:
        """The table as CSV (header + rows; None as empty field)."""
        import csv
        import io

        buf = io.StringIO()
        w = csv.writer(buf)
        w.writerow(self.columns)
        for row in self.rows:
            w.writerow(["" if v is None else v for v in row])
        return buf.getvalue()
