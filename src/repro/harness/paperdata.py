"""Published values from the paper, used for side-by-side comparison.

Every number here is transcribed from the paper's text, Figure 4's table,
or derived directly from a stated ratio.  The figure harnesses print
these next to the model's outputs, and the benchmark suite asserts the
*shape* agreements (who wins, orderings, rough factors) — see
EXPERIMENTS.md for the complete accounting.
"""

from __future__ import annotations

__all__ = [
    "FIG1_STREAM_GBS",
    "FIG1_CACHE_RATIO",
    "FIG2_EPYC_CROSS_SOCKET_FACTOR",
    "FIG3_MEAN_SLOWDOWN",
    "FIG4_TABLE",
    "FIG5_MPI_VEC_UNSTRUCTURED_RANGE",
    "FIG6_SPEEDUP_VS_8360Y",
    "FIG6_SPEEDUP_VS_EPYC",
    "FIG6_A100_SPEEDUP_RANGE",
    "FIG7_MPI_RATIO_RANGE",
    "FIG8_EFFICIENCY_MAX",
    "FIG8_EFFICIENCY_RANGES",
    "FIG9_TILING_SPEEDUP",
    "FIG9_TILED_MAX_VS_A100",
    "MINIBUDE_TFLOPS",
    "STRUCTURED_APPS",
    "UNSTRUCTURED_APPS",
]

STRUCTURED_APPS = [
    "cloverleaf2d", "cloverleaf3d", "opensbli_sa",
    "opensbli_sn", "acoustic", "miniweather",
]
UNSTRUCTURED_APPS = ["mgcfd", "volna"]

#: Figure 1: BabelStream Triad plateaus (GB/s), node scope.
FIG1_STREAM_GBS = {
    "max9480": 1446.0,
    "max9480_ss": 1643.0,  # streaming-store tuned flags
    "icx8360y": 296.0,
    "epyc7v73x": 310.0,
    "a100": 1310.0,  # "achievable peak memory bandwidth" (Sec. 6)
}

#: Figure 1 / 9: cache : memory bandwidth plateau ratios.
FIG1_CACHE_RATIO = {"max9480": 3.8, "icx8360y": 6.3, "epyc7v73x": 14.0}

#: Figure 2 commentary: EPYC cross-socket ping-pong latency is ~1.6x
#: worse than cross-NUMA within a socket.
FIG2_EPYC_CROSS_SOCKET_FACTOR = 1.6

#: Figure 5 commentary: vectorized MPI beats scalar MPI by 1.6-1.8x on
#: the unstructured-mesh apps (MG-CFD, Volna) on the Xeon MAX.
FIG5_MPI_VEC_UNSTRUCTURED_RANGE = (1.6, 1.8)

#: Figure 6 commentary: the A100 stays within 1.1-2.1x of the MAX 9480
#: across the structured apps (both have ~comparable HBM bandwidth).
FIG6_A100_SPEEDUP_RANGE = (1.1, 2.1)

#: Figure 7 commentary: pure MPI spends 1.2-5.3x the MPI time of the
#: one-rank-per-NUMA MPI+OpenMP configuration.
FIG7_MPI_RATIO_RANGE = (1.2, 5.3)

#: Figure 9 commentary: tiled CloverLeaf 2D on the MAX 9480 comes within
#: ~1.5x of the A100 runtime.
FIG9_TILED_MAX_VS_A100 = 1.5

#: Sec. 5: mean/median slowdown vs the per-app best configuration.
FIG3_MEAN_SLOWDOWN = {
    "max9480": {"mean": 1.25, "median": 1.12},
    "icx8360y": {"mean": 1.11, "median": 1.05},
}

#: Figure 4's table, verbatim: config label -> (MG-CFD, Volna) slowdowns
#: vs each app's best on the Xeon CPU MAX 9480.  (None = not printed.)
FIG4_TABLE = {
    "MPI vec w/o HT OneAPI (ZMM high)": (1.11, 1.00),
    "MPI vec w/HT OneAPI (ZMM high)": (1.06, 1.11),
    "MPI vec w/o HT OneAPI (ZMM default)": (1.11, 1.08),
    "MPI vec w/HT Classic (ZMM high)": (1.00, 1.21),
    "MPI vec w/HT Classic (ZMM default)": (1.00, 1.22),
    "MPI vec w/o HT Classic (ZMM high)": (1.06, 1.28),
    "MPI vec w/HT OneAPI (ZMM default)": (1.07, 1.29),
    "MPI vec w/o HT Classic (ZMM default)": (1.09, 1.29),
    "MPI w/HT OneAPI (ZMM default)": (1.47, 1.69),
    "MPI w/HT OneAPI (ZMM high)": (1.41, 1.81),
    "MPI w/HT Classic (ZMM default)": (1.49, 1.79),
    "MPI w/HT Classic (ZMM high)": (None, 1.78),
    "MPI w/o HT OneAPI (ZMM high)": (1.38, 1.93),
    "MPI w/o HT OneAPI (ZMM default)": (1.40, 1.93),
    "MPI+OpenMP w/o HT OneAPI (ZMM default)": (1.65, 1.95),
    "MPI+OpenMP w/o HT OneAPI (ZMM high)": (1.66, 1.98),
    "MPI+OpenMP w/HT OneAPI (ZMM high)": (1.84, 1.95),
    "MPI+OpenMP w/HT OneAPI (ZMM default)": (2.09, 1.82),
    "MPI w/o HT Classic (ZMM default)": (1.66, 2.28),
    "MPI w/o HT Classic (ZMM high)": (1.67, 2.28),
    "MPI+OpenMP w/HT Classic (ZMM high)": (2.08, 1.91),
    "MPI+OpenMP w/HT Classic (ZMM default)": (2.10, 1.90),
    "MPI+OpenMP w/o HT Classic (ZMM default)": (1.85, 2.30),
    "MPI+OpenMP w/o HT Classic (ZMM high)": (None, 2.30),
    "MPI+SYCL flat w/HT OneAPI (ZMM default)": (2.35, 1.90),
}

#: Figure 6's table: best-config speedup of the Xeon MAX 9480 vs 8360Y.
FIG6_SPEEDUP_VS_8360Y = {
    "cloverleaf2d": 4.2,
    "cloverleaf3d": 4.3,  # conclusion: range up to 4.3x
    "opensbli_sa": 3.8,
    "opensbli_sn": 2.5,  # "still over 2.5x"
    "acoustic": 1.98,
    "mgcfd": 2.5,
    "volna": 2.0,
    "minibude": 1.9,
}

#: ...and vs the EPYC 7V73X where the text states it.
FIG6_SPEEDUP_VS_EPYC = {
    "mgcfd": 2.0,
    "minibude": 1.36,
}

#: Figure 8: effective bandwidth as a fraction of STREAM on MAX 9480.
FIG8_EFFICIENCY_MAX = {
    "cloverleaf2d": 0.75,
    "cloverleaf3d": 0.66,  # "over 65%"
    "opensbli_sa": 0.66,
    "opensbli_sn": 0.53,
    "acoustic": 0.41,
}

#: Figure 8 commentary: ranges on the DDR platforms.
FIG8_EFFICIENCY_RANGES = {
    "icx8360y": (0.75, 0.85),
    "epyc7v73x": (0.79, 0.96),
}

#: Figure 9: CloverLeaf 2D cache-blocking tiling speedups.
FIG9_TILING_SPEEDUP = {
    "max9480": 1.84,
    "icx8360y": 2.7,
    "epyc7v73x": 4.0,
}

#: Sec. 5: miniBUDE achieved 6 TFLOPS/s with oneAPI, no HT, ZMM high.
MINIBUDE_TFLOPS = 6.0
