"""Benchmark harness: runners and figure regeneration.

- :func:`~repro.harness.runner.run_application` / ``sweep`` / ``best_run``
  — evaluate any app x platform x configuration;
- :mod:`~repro.harness.figures` — ``fig1()`` .. ``fig9()`` regenerate the
  paper's tables and figures with published values alongside
  (``fig7x()`` extends Fig 7 to multi-node 1k-10k rank scaling);
- ``python -m repro.harness`` prints everything.

Layer role (docs/ARCHITECTURE.md): the top of the stack — user-facing
runners over the engine and the fig1..fig9 regeneration.
"""

from .figures import (
    all_figures,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig7x,
    fig8,
    fig9,
)
from .report import FigureResult, format_table, render_breakdown
from .runner import (
    app_spec,
    best_attribution,
    best_run,
    clear_cache,
    default_sweep_configs,
    run_application,
    sweep,
    trace_application,
)

__all__ = [
    "run_application",
    "trace_application",
    "sweep",
    "best_run",
    "best_attribution",
    "default_sweep_configs",
    "app_spec",
    "clear_cache",
    "FigureResult",
    "format_table",
    "render_breakdown",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig7x",
    "fig8", "fig9",
    "all_figures",
]
