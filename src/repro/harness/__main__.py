"""Print every regenerated table/figure: ``python -m repro.harness``."""

import sys

from .figures import all_figures


def main() -> int:
    for fig in all_figures():
        print(fig.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
