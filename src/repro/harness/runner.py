"""Benchmark runner: application x platform x configuration → estimate.

Since the sweep engine landed these are thin compatibility wrappers over
the process-default :class:`~repro.engine.core.SweepEngine`, which
profiles each application once (scaled-down run through the recording
DSL context, extrapolated to paper scale — see
:func:`repro.apps.base.build_spec`), caches estimates in a persistent
content-addressed store, and can fan sweeps out over parallel workers.
All figure harnesses go through :func:`run_application` / :func:`sweep`
/ :func:`best_run`; configure workers and caching with
``repro.engine.configure_engine`` or the CLI's ``--jobs``/``--no-cache``.
"""

from __future__ import annotations

from ..engine import default_engine
from ..machine.config import RunConfig
from ..machine.spec import PlatformSpec
from ..perfmodel.kernelmodel import AppSpec
from ..perfmodel.roofline import AppEstimate

__all__ = ["app_spec", "run_application", "sweep", "best_run", "clear_cache"]


def app_spec(name: str) -> AppSpec:
    """The (cached) paper-scale model spec of an application."""
    return default_engine().app_spec(name)


def clear_cache() -> None:
    """Forget profiled specs and hierarchy models *and* wipe the engine's
    persistent result store, so tests stay hermetic."""
    default_engine().clear(store=True)


def run_application(
    name: str, platform: PlatformSpec, config: RunConfig
) -> AppEstimate:
    """Estimate one application run; raises for infeasible configs or
    compilers the app does not run under (miniBUDE + Classic)."""
    return default_engine().run(name, platform, config)


def sweep(
    name: str, platform: PlatformSpec, configs: list[RunConfig]
) -> list[tuple[RunConfig, AppEstimate | None]]:
    """Run every feasible configuration; None for configs the app cannot
    run (e.g. the paper's stalling Classic-compiled miniBUDE)."""
    return default_engine().sweep(name, platform, configs)


def best_run(
    name: str, platform: PlatformSpec, configs: list[RunConfig]
) -> tuple[RunConfig, AppEstimate]:
    """The fastest feasible configuration of a sweep."""
    return default_engine().best_run(name, platform, configs)
