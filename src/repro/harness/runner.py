"""Benchmark runner: application x platform x configuration → estimate.

Since the sweep engine landed these are thin compatibility wrappers over
the process-default :class:`~repro.engine.core.SweepEngine`, which
profiles each application once (scaled-down run through the recording
DSL context, extrapolated to paper scale — see
:func:`repro.apps.base.build_spec`), caches estimates in a persistent
content-addressed store, and can fan sweeps out over parallel workers.
All figure harnesses go through :func:`run_application` / :func:`sweep`
/ :func:`best_run`; configure workers and caching with
``repro.engine.configure_engine`` or the CLI's ``--jobs``/``--no-cache``.
"""

from __future__ import annotations

from ..engine import default_engine
from ..machine.config import RunConfig, best_practice_config
from ..machine.spec import PlatformSpec
from ..obs.tracer import Tracer, tracing
from ..perfmodel.kernelmodel import AppSpec
from ..perfmodel.roofline import AppEstimate, estimate_app

__all__ = [
    "app_spec",
    "run_application",
    "trace_application",
    "sweep",
    "best_run",
    "best_attribution",
    "default_sweep_configs",
    "clear_cache",
]


def app_spec(name: str) -> AppSpec:
    """The (cached) paper-scale model spec of an application."""
    return default_engine().app_spec(name)


def clear_cache() -> None:
    """Forget profiled specs and hierarchy models *and* wipe the engine's
    persistent result store, so tests stay hermetic.

    When the serve layer has been used in this process, its in-memory
    LRU tiers are invalidated too — a stale warm tier over a wiped
    store would resurrect cleared estimates.  The lookup goes through
    ``sys.modules`` so serve-less runs never import (or pay for) the
    serve package.
    """
    import sys

    default_engine().clear(store=True)
    lru = sys.modules.get("repro.serve.lru")
    if lru is not None:
        lru.invalidate_all()


def run_application(
    name: str, platform: PlatformSpec, config: RunConfig
) -> AppEstimate:
    """Estimate one application run; raises for infeasible configs or
    compilers the app does not run under (miniBUDE + Classic)."""
    return default_engine().run(name, platform, config)


def trace_application(
    name: str,
    platform: PlatformSpec,
    config: RunConfig | None = None,
    *,
    tracer: Tracer | None = None,
    iterations: int = 1,
) -> tuple[AppEstimate, Tracer]:
    """Estimate one run with tracing enabled, returning the estimate and
    a populated :class:`~repro.obs.tracer.Tracer`.

    The evaluation bypasses the persistent result store (a cache hit
    would skip the instrumented model code and yield an empty trace) but
    still uses the engine's cached spec and hierarchy model.  Beyond the
    perfmodel events the roofline emits, the tracer gets a synthetic
    simulated-time timeline (one span per kernel loop and per halo
    exchange, repeated for ``iterations`` application iterations) built
    by :func:`repro.obs.apptrace.build_timeline` — the view ``python -m
    repro trace`` exports for Perfetto.
    """
    from ..obs.apptrace import build_timeline

    engine = default_engine()
    spec = engine.app_spec(name)
    if config is None:
        config = best_practice_config(platform)
    tr = tracer if tracer is not None else Tracer()
    with tracing(tr):
        est = estimate_app(spec, platform, config, engine.hierarchy(platform))
        build_timeline(tr, spec, est, iterations=iterations)
    return est, tr


def sweep(
    name: str, platform: PlatformSpec, configs: list[RunConfig]
) -> list[tuple[RunConfig, AppEstimate | None]]:
    """Run every feasible configuration; None for configs the app cannot
    run (e.g. the paper's stalling Classic-compiled miniBUDE)."""
    return default_engine().sweep(name, platform, configs)


def best_run(
    name: str, platform: PlatformSpec, configs: list[RunConfig]
) -> tuple[RunConfig, AppEstimate]:
    """The fastest feasible configuration of a sweep."""
    return default_engine().best_run(name, platform, configs)


def default_sweep_configs(name: str, platform: PlatformSpec) -> list[RunConfig]:
    """The configuration sweep an application gets by default on a
    platform: CUDA on GPUs, the structured or unstructured CPU sweep
    otherwise — the same resolution the CLI's ``run``/``explain`` verbs
    and the figure harnesses use."""
    from ..apps import get_app
    from ..machine import (
        Compiler,
        Parallelization,
        structured_config_sweep,
        unstructured_config_sweep,
    )
    from ..machine.spec import DeviceKind

    if platform.kind is DeviceKind.GPU:
        return [RunConfig(Compiler.NVCC, Parallelization.CUDA)]
    defn = get_app(name)
    return (structured_config_sweep(platform) if defn.structured
            else unstructured_config_sweep(platform))


def best_attribution(name: str, platform: PlatformSpec):
    """``(config, estimate, attribution tree)`` of an application's best
    feasible run on a platform — the unit ``python -m repro explain``
    and the HTML report build their views from."""
    from ..obs.attribution import attribute_estimate

    cfg, est = best_run(name, platform, default_sweep_configs(name, platform))
    return cfg, est, attribute_estimate(est)
