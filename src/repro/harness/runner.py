"""Benchmark runner: application x platform x configuration → estimate.

Profiles each application once (scaled-down run through the recording
DSL context, extrapolated to paper scale — see
:func:`repro.apps.base.build_spec`), caches the spec, and evaluates the
performance model for any platform/configuration.  All figure harnesses
go through :func:`run_application` / :func:`sweep` / :func:`best_run`.
"""

from __future__ import annotations

from functools import lru_cache

from ..apps.base import AppDefinition, build_spec, get_app
from ..machine.config import RunConfig, feasible
from ..machine.spec import PlatformSpec
from ..mem.hierarchy import HierarchyModel
from ..perfmodel import calibration as cal
from ..perfmodel.kernelmodel import AppSpec
from ..perfmodel.roofline import AppEstimate, estimate_app

__all__ = ["app_spec", "run_application", "sweep", "best_run", "clear_cache"]

_SPEC_CACHE: dict[str, AppSpec] = {}
_HM_CACHE: dict[str, HierarchyModel] = {}


def app_spec(name: str) -> AppSpec:
    """The (cached) paper-scale model spec of an application."""
    if name not in _SPEC_CACHE:
        _SPEC_CACHE[name] = build_spec(get_app(name))
    return _SPEC_CACHE[name]


def clear_cache() -> None:
    _SPEC_CACHE.clear()
    _HM_CACHE.clear()


def _hierarchy(platform: PlatformSpec) -> HierarchyModel:
    if platform.short_name not in _HM_CACHE:
        _HM_CACHE[platform.short_name] = HierarchyModel(
            platform, utilization=cal.CACHE_UTILIZATION
        )
    return _HM_CACHE[platform.short_name]


def run_application(
    name: str, platform: PlatformSpec, config: RunConfig
) -> AppEstimate:
    """Estimate one application run; raises for infeasible configs or
    compilers the app does not run under (miniBUDE + Classic)."""
    return estimate_app(app_spec(name), platform, config, _hierarchy(platform))


def sweep(
    name: str, platform: PlatformSpec, configs: list[RunConfig]
) -> list[tuple[RunConfig, AppEstimate | None]]:
    """Run every feasible configuration; None for configs the app cannot
    run (e.g. the paper's stalling Classic-compiled miniBUDE)."""
    out = []
    spec = app_spec(name)
    for cfg in configs:
        if not feasible(cfg, platform) or spec.affinity(cfg.compiler) <= 0.0:
            out.append((cfg, None))
            continue
        out.append((cfg, run_application(name, platform, cfg)))
    return out


def best_run(
    name: str, platform: PlatformSpec, configs: list[RunConfig]
) -> tuple[RunConfig, AppEstimate]:
    """The fastest feasible configuration of a sweep."""
    runs = [(c, e) for c, e in sweep(name, platform, configs) if e is not None]
    if not runs:
        raise ValueError(f"{name} has no feasible configuration on {platform.name}")
    return min(runs, key=lambda ce: ce[1].total_time)
