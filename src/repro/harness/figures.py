"""Regenerate every table and figure of the paper's evaluation.

Each ``figN()`` returns a :class:`~repro.harness.report.FigureResult`
whose rows hold the model's numbers next to the paper's published values
(:mod:`repro.harness.paperdata`).  ``python -m repro.harness`` prints all
of them; ``benchmarks/`` asserts the shape agreements per figure.
"""

from __future__ import annotations

import numpy as np

from ..apps.base import APP_ORDER
from ..engine import default_engine
from ..machine import (
    A100_40GB,
    CPU_PLATFORMS,
    EPYC_7V73X,
    XEON_8360Y,
    XEON_MAX_9480,
    Compiler,
    Parallelization,
    RunConfig,
    structured_config_sweep,
    unstructured_config_sweep,
)
from ..machine.topology import CoreToCoreBenchmark
from ..mem.hierarchy import HierarchyModel, Scope
from ..mem.stream import plateau_bandwidth, triad_sweep
from ..ops.tiling import TiledChainModel
from . import paperdata as paper
from .report import FigureResult
from .runner import app_spec, best_run, run_application, sweep

__all__ = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig7x", "fig8",
    "fig9", "all_figures",
]

_CUDA = RunConfig(Compiler.NVCC, Parallelization.CUDA)


def _sweep_for(name: str, platform):
    if name in paper.UNSTRUCTURED_APPS:
        return unstructured_config_sweep(platform)
    return structured_config_sweep(platform)


# ---------------------------------------------------------------------------


def fig1(sizes: np.ndarray | None = None) -> FigureResult:
    """BabelStream Triad bandwidth: plateaus and size sweeps."""
    res = FigureResult(
        "fig1",
        "BabelStream Triad bandwidth (GB/s)",
        ("platform", "scope", "model GB/s", "paper GB/s"),
    )
    for p, key, tuned in (
        (XEON_MAX_9480, "max9480", False),
        (XEON_MAX_9480, "max9480_ss", True),
        (XEON_8360Y, "icx8360y", False),
        (EPYC_7V73X, "epyc7v73x", False),
        (A100_40GB, "a100", False),
    ):
        label = p.short_name + (" (SS flags)" if tuned else "")
        res.rows.append(
            (label, "node", plateau_bandwidth(p, tuned=tuned) / 1e9,
             paper.FIG1_STREAM_GBS[key])
        )
    for p in CPU_PLATFORMS:
        res.rows.append((p.short_name, "socket",
                         plateau_bandwidth(p, Scope.SOCKET) / 1e9, None))
        res.rows.append((p.short_name, "numa",
                         plateau_bandwidth(p, Scope.NUMA) / 1e9, None))
    for p in CPU_PLATFORMS:
        ratio = HierarchyModel(p).cache_to_memory_ratio()
        res.notes.append(
            f"{p.short_name} cache:memory plateau ratio {ratio:.2f}x "
            f"(paper {paper.FIG1_CACHE_RATIO[p.short_name]}x)"
        )
    if sizes is not None:
        for r in triad_sweep(XEON_MAX_9480, sizes):
            res.notes.append(f"max9480 n={r.n}: {r.gbs:.0f} GB/s")
    return res


def fig2() -> FigureResult:
    """Core-to-core message-passing latency per pair class (ns)."""
    res = FigureResult(
        "fig2",
        "Core-to-core message latency (ns, one way)",
        ("platform", "pair", "model ns"),
    )
    for p in CPU_PLATFORMS:
        bench = CoreToCoreBenchmark(p)
        for pair, lat in bench.representative_pairs().items():
            res.rows.append((p.short_name, pair, lat * 1e9))
    res.notes.append(
        "paper: no significant improvement vs 8360Y; EPYC cross-socket ~1.6x worse"
    )
    return res


def _config_matrix(apps: list[str], platform, sweep_fn) -> FigureResult:
    """Shared engine of Figures 3 and 4: slowdown vs per-app best.

    All apps go into one job plan so the sweep engine dedups, caches,
    and (with ``--jobs``) parallelizes the whole app x config matrix.
    """
    configs = sweep_fn(platform)
    runs_by_app = default_engine().sweep_many(apps, platform, configs)
    rows = {}
    for name in apps:
        runs = runs_by_app[name]
        times = {c.label(): (e.total_time if e else None) for c, e in runs}
        best = min(t for t in times.values() if t is not None)
        rows[name] = {lbl: (t / best if t else None) for lbl, t in times.items()}
    labels = [c.label() for c in configs]
    # Order rows by mean slowdown across apps (as the paper does).
    def rowmean(lbl):
        vals = [rows[a][lbl] for a in apps if rows[a][lbl] is not None]
        return float(np.mean(vals)) if vals else float("inf")

    labels.sort(key=rowmean)
    out = []
    for lbl in labels:
        out.append(tuple([lbl] + [rows[a][lbl] for a in apps]))
    return out, rows


def fig3(platform=XEON_MAX_9480) -> FigureResult:
    """Structured-mesh apps: slowdown vs best over the full config sweep."""
    apps = paper.STRUCTURED_APPS
    table, rows = _config_matrix(apps, platform, structured_config_sweep)
    res = FigureResult(
        "fig3",
        f"Structured-mesh configuration sweep on {platform.short_name} "
        "(slowdown vs per-app best)",
        tuple(["configuration"] + apps),
        table,
    )
    all_vals = [v for a in apps for v in rows[a].values() if v is not None]
    mean, median = float(np.mean(all_vals)), float(np.median(all_vals))
    ref = paper.FIG3_MEAN_SLOWDOWN.get(platform.short_name)
    res.notes.append(
        f"mean slowdown {mean:.2f}, median {median:.2f}"
        + (f" (paper: mean {ref['mean']}, median {ref['median']})" if ref else "")
    )
    return res


def fig4(platform=XEON_MAX_9480) -> FigureResult:
    """Unstructured-mesh apps: slowdown vs best, with the paper's table."""
    apps = paper.UNSTRUCTURED_APPS
    table, _ = _config_matrix(apps, platform, unstructured_config_sweep)
    res = FigureResult(
        "fig4",
        f"Unstructured-mesh configuration sweep on {platform.short_name} "
        "(slowdown vs per-app best)",
        ("configuration", "mgcfd", "volna", "paper mgcfd", "paper volna"),
    )
    for row in table:
        ref = paper.FIG4_TABLE.get(row[0], (None, None))
        res.rows.append((row[0], row[1], row[2], ref[0], ref[1]))
    return res


def fig5(platform=XEON_MAX_9480) -> FigureResult:
    """Relative speedup of parallelizations vs pure MPI on the Xeon MAX."""
    groups = {
        "MPI": [Parallelization.MPI],
        "MPI vec": [Parallelization.MPI_VEC],
        "MPI+OpenMP": [Parallelization.MPI_OMP],
        "MPI+SYCL flat": [Parallelization.MPI_SYCL_FLAT],
        "MPI+SYCL ndrange": [Parallelization.MPI_SYCL_NDRANGE],
    }
    res = FigureResult(
        "fig5",
        f"Speedup of parallelizations vs pure MPI on {platform.short_name}",
        tuple(["app"] + list(groups)),
    )
    for name in APP_ORDER:
        if name == "minibude":
            continue  # not an OPS/OP2 app; the paper's Fig 5 excludes it
        # One engine sweep over the full config set; the parallelization
        # groups are then sliced in memory (every group is a subset).
        runs = sweep(name, platform, _sweep_for(name, platform))
        by_group = {}
        for gname, pars in groups.items():
            times = [e.total_time for c, e in runs
                     if e is not None and c.parallelization in pars]
            by_group[gname] = min(times, default=None)
        base = by_group["MPI"]
        res.rows.append(tuple(
            [name] + [
                (base / t if (t and base) else None) for t in by_group.values()
            ]
        ))
    res.notes.append(
        "paper: MPI+OpenMP best on structured (esp. Acoustic); MPI vec "
        "1.6-1.8x on unstructured; SYCL behind OpenMP, worst on CloverLeaf"
    )
    return res


def fig6() -> FigureResult:
    """Best performance per app per platform and MAX-9480 speedups."""
    res = FigureResult(
        "fig6",
        "Best-configuration runtime (s) per platform; Xeon MAX speedups",
        ("app", "max9480", "icx8360y", "epyc7v73x", "a100",
         "vs 8360Y", "paper", "vs EPYC", "paper ", "A100/MAX"),
    )
    for name in APP_ORDER:
        times = {}
        for p in CPU_PLATFORMS:
            _, est = best_run(name, p, _sweep_for(name, p))
            times[p.short_name] = est.total_time
        times["a100"] = run_application(name, A100_40GB, _CUDA).total_time
        res.rows.append((
            name,
            times["max9480"], times["icx8360y"], times["epyc7v73x"], times["a100"],
            times["icx8360y"] / times["max9480"],
            paper.FIG6_SPEEDUP_VS_8360Y.get(name),
            times["epyc7v73x"] / times["max9480"],
            paper.FIG6_SPEEDUP_VS_EPYC.get(name),
            times["max9480"] / times["a100"],
        ))
    res.notes.append("paper: overall Xeon MAX speedup range 2.0x-4.3x; A100 1.1-2.1x faster")
    return res


def fig7() -> FigureResult:
    """Fraction of runtime spent in MPI, pure MPI vs MPI+OpenMP."""
    res = FigureResult(
        "fig7",
        "Fraction of runtime in MPI (%)",
        ("app", "platform", "MPI", "MPI+OpenMP"),
    )
    for name in APP_ORDER:
        if name == "minibude":
            continue
        for p in CPU_PLATFORMS:
            runs = sweep(name, p, _sweep_for(name, p))
            fracs = {}
            for par in (Parallelization.MPI, Parallelization.MPI_OMP):
                ests = [e for c, e in runs
                        if e is not None and c.parallelization is par]
                best = min(ests, key=lambda e: e.total_time, default=None)
                fracs[par] = best.mpi_fraction * 100 if best else None
            res.rows.append((name, p.short_name,
                             fracs[Parallelization.MPI],
                             fracs[Parallelization.MPI_OMP]))
    res.notes.append(
        "paper: MPI+OpenMP has lower MPI overhead for all but volna; the "
        "MAX's MPI fraction is 1.2-5.3x the 8360Y's"
    )
    return res


#: Node counts of the fig7x scaling study: 16–96 dual-socket nodes spans
#: ~1.8k–10.7k ranks on the 112-core Xeon MAX node (the Aurora-study
#: regime ROADMAP item 3 asks about).
FIG7X_NODE_COUNTS = (16, 32, 64, 96)

#: Apps extended beyond the node: the two structured codes Fig 7
#: identifies as halo-exchange dominated at scale.
FIG7X_APPS = ("cloverleaf3d", "miniweather")


def fig7x(node_counts: tuple[int, ...] = FIG7X_NODE_COUNTS) -> FigureResult:
    """Fig 7 extended to clusters: MPI fraction and parallel efficiency
    at 1k–10k ranks (strong scaling, pure MPI, Xeon MAX vs 8360Y)."""
    from ..perfmodel.scaling import cluster_strong_scaling

    res = FigureResult(
        "fig7x",
        "Strong scaling to 1k-10k ranks: MPI fraction and efficiency",
        ("app", "platform", "nodes", "ranks", "MPI %", "efficiency"),
    )
    cfg = RunConfig(Compiler.ONEAPI, Parallelization.MPI)
    for name in FIG7X_APPS:
        spec = app_spec(name)
        for p in (XEON_MAX_9480, XEON_8360Y):
            for pt in cluster_strong_scaling(spec, p, cfg, node_counts):
                res.rows.append((
                    name, p.short_name, pt.nodes, pt.ranks,
                    pt.mpi_fraction * 100, pt.efficiency,
                ))
    res.notes.append(
        "model extension beyond the paper: fixed paper-scale domains "
        "spread over HDR200-connected clusters; the MAX's cheaper compute "
        "pushes it into the MPI-bound regime at lower rank counts"
    )
    return res


def fig8() -> FigureResult:
    """Achieved effective bandwidth (fraction of STREAM) per app."""
    res = FigureResult(
        "fig8",
        "Effective bandwidth of kernels (fraction of STREAM peak)",
        ("app", "max9480", "paper", "icx8360y", "epyc7v73x"),
    )
    streams = {p.short_name: p.stream_bandwidth for p in CPU_PLATFORMS}
    for name in paper.STRUCTURED_APPS:
        row = [name]
        for p in CPU_PLATFORMS:
            _, est = best_run(name, p, _sweep_for(name, p))
            row.append(est.effective_bandwidth / streams[p.short_name])
            if p is XEON_MAX_9480:
                row.append(paper.FIG8_EFFICIENCY_MAX.get(name))
        res.rows.append(tuple(row))
    lo, hi = paper.FIG8_EFFICIENCY_RANGES["icx8360y"]
    res.notes.append(f"paper: 8360Y reaches {lo:.0%}-{hi:.0%} of STREAM")
    lo, hi = paper.FIG8_EFFICIENCY_RANGES["epyc7v73x"]
    res.notes.append(f"paper: EPYC reaches {lo:.0%}-{hi:.0%} of STREAM")
    return res


def fig9() -> FigureResult:
    """CloverLeaf 2D with cache-blocking tiling: speedups per platform."""
    spec = app_spec("cloverleaf2d")
    unique_bpp = spec.state_bytes / spec.gridpoints
    res = FigureResult(
        "fig9",
        "CloverLeaf 2D cache-blocking tiling speedup",
        ("platform", "untiled s", "tiled s", "speedup", "paper"),
    )
    tiled_max = None
    for p in CPU_PLATFORMS:
        cfg = RunConfig(
            Compiler.ONEAPI if p is not EPYC_7V73X else Compiler.AOCC,
            Parallelization.MPI,
            hyperthreading=p.smt > 1,
        )
        # ZMM high where available, as the paper's Fig. 9 runs used.
        if p.isa.width_bits >= 512:
            from ..machine.config import ZmmUsage

            cfg = cfg.with_(zmm=ZmmUsage.HIGH)
        base = run_application("cloverleaf2d", p, cfg)
        model = TiledChainModel(spec, p, cfg, unique_bytes_per_point=unique_bpp)
        speedup = model.speedup()
        tiled = base.total_time / speedup
        if p is XEON_MAX_9480:
            tiled_max = tiled
        res.rows.append((
            p.short_name, base.total_time, tiled, speedup,
            paper.FIG9_TILING_SPEEDUP[p.short_name],
        ))
    a100 = run_application("cloverleaf2d", A100_40GB, _CUDA).total_time
    res.rows.append(("a100 (untiled)", a100, None, None, None))
    if tiled_max:
        res.notes.append(
            f"tiled Xeon MAX vs A100: {a100 / tiled_max:.2f}x faster "
            "(paper: 1.5x)"
        )
    res.notes.append(
        "paper correlation: speedup tracks the cache:memory bandwidth "
        "ratio (3.8x / 6.3x / 14x)"
    )
    return res


def all_figures() -> list[FigureResult]:
    """Every figure in paper order (fig1..fig9, plus the fig7x cluster
    scaling extension)."""
    return [fig1(), fig2(), fig3(), fig4(), fig5(), fig6(), fig7(), fig7x(),
            fig8(), fig9()]
