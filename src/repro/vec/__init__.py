"""Batched, vectorized evaluation of the roofline model (array IR).

Layer role: ``repro.vec`` sits between the pure model layer
(:mod:`repro.perfmodel`, :mod:`repro.mem`) and the execution layer
(:mod:`repro.engine`, :mod:`repro.serve`).  It lowers a whole batch of
(:class:`~repro.perfmodel.kernelmodel.AppSpec`, platform, config)
evaluation points into contiguous numpy arrays — one row per (job,
loop) — and evaluates the p-norm roofline blend, the configuration
scaling and the communication model as a handful of elementwise array
passes per platform group instead of one Python traversal per job.
The results are bit-for-bit identical to
:func:`repro.perfmodel.roofline.estimate_app` (the contract
``baselines/golden_equivalence.json`` pins); see ``docs/VECTOR.md``
for the array layout, the lowering contract and the exact-equivalence
rules.  This package never imports the engine or serve layers — the
engine calls *down* into it, mirroring the engine → perfmodel
direction the purity tests enforce.
"""

from .arrays import AppBlock, PairBlock, PlatformTable, calibration_token
from .evaluate import VecEvaluator

__all__ = [
    "AppBlock",
    "PairBlock",
    "PlatformTable",
    "VecEvaluator",
    "calibration_token",
]
