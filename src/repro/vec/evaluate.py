"""Batched evaluation of whole job batches over the array IR.

:class:`VecEvaluator` takes a batch of ``(spec, platform, config,
hierarchy)`` points, lowers them onto the containers in
:mod:`repro.vec.arrays` (cached per spec / pair / platform, guarded by
the calibration snapshot token), groups rows by platform, and runs the
roofline model as elementwise float64 array passes — producing
:class:`~repro.perfmodel.roofline.AppEstimate` objects bit-for-bit
identical to :func:`~repro.perfmodel.roofline.estimate_app`.

Exact-equivalence rules (see ``docs/VECTOR.md`` for the full table):

- elementwise ``* / + -``, ``np.minimum``/``np.maximum``/``np.where``
  on float64 match scalar IEEE-754 doubles bit-for-bit, so the traffic,
  working-set, bandwidth and limb-term passes run in numpy;
- ``x ** p`` and ``math.log2`` do **not** (numpy's SIMD pow/log differ
  in the last ulp), so the p-norm blend runs row-wise in Python via
  ``math.pow`` — the same C ``pow`` that ``float.__pow__`` calls;
- numpy reductions use pairwise summation while the scalar model sums
  left-to-right, so all per-job totals use Python ``sum`` over list
  slices;
- config-scalar helpers whose loop dependence collapses to a small
  class (``effective_flops``: (dtype, vectorizable);
  ``gather_throughput``: vectorizable; ``traffic_multiplier``: has
  indirect accesses) are probed once per class with the *scalar*
  functions and scattered by code, so their internal arithmetic is the
  scalar arithmetic by construction;
- the communication model is memoized on its true dependency key
  (spec identity, platform, rank count, hyperthreading) and always
  computed by the scalar :func:`~repro.perfmodel.commmodel.
  estimate_comm`.

A point the vectorized path cannot reproduce faithfully (zero
``bytes_per_point`` under the gathered-residency branch, a failing
config, an affinity the scalar path rejects with ``ValueError``)
returns ``None`` in its slot; the engine falls back to the per-job
scalar path for exactly those jobs, preserving error messages and
metric counts.

Batch-aware instrumentation: when a tracer or session metrics registry
is active, the evaluator records per-batch wall spans (``lower`` /
``pass`` / ``scatter`` on the ``vec`` track), the ``vec_batch_jobs`` /
``vec_lower_seconds`` / ``vec_eval_seconds`` histogram families, and
*synthesizes* the scalar path's attribution from the batch columns —
``perfmodel_loops_total`` / ``perfmodel_loop_seconds_total`` per
winning limb and ``mem_hierarchy_lookups_total`` per serving level are
tallied by array reductions (no per-row Python), and one ``perfmodel``
``estimate:<app>`` trace event is emitted per job.  Per-*loop* trace
events stay on the scalar path (``repro trace`` / ``estimate_app``),
whose single-app depth is where that granularity belongs; a batched
sweep traces at job granularity so instrumentation cannot drag the
fast path back to scalar speeds.  Instrumented runs therefore no
longer need the scalar fallback: the observed path *is* the fast path,
and the golden-equivalence suite pins that results stay bit-for-bit
identical with observability on.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np

from ..machine.config import RunConfig
from ..machine.spec import DeviceKind, PlatformSpec
from ..mem.hierarchy import HierarchyModel
from ..obs.metrics import active_metrics
from ..obs.tracer import active_tracer
from ..perfmodel import calibration as cal
from ..perfmodel.commmodel import estimate_comm
from ..perfmodel.configmodel import (
    bandwidth_multiplier,
    effective_flops,
    gather_throughput,
    kernel_concurrency,
    loop_overhead,
    sycl_time_multiplier,
    traffic_multiplier,
)
from ..perfmodel.kernelmodel import AppSpec
from ..perfmodel.roofline import AppEstimate, LoopTime
from .arrays import F64, AppBlock, PairBlock, PlatformTable, calibration_token

__all__ = ["VecEvaluator"]

#: Batch-size histogram bounds (jobs per ``evaluate_many`` call):
#: powers of two up to the serve layer's largest merged plans.
BATCH_JOB_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class _JobScalars:
    """The config-dependent scalars of one job, probed once per job."""

    __slots__ = (
        "affinity", "sycl", "overhead", "mult", "tm_ind", "eff_vals",
        "gather_true", "gather_false", "reuse", "resident", "cache_hbw",
        "comm", "nranks",
    )


class VecEvaluator:
    """Caching, thread-safe batched evaluator of model points.

    All lowered-block caches are invalidated together whenever the
    calibration snapshot changes; per-spec entries are keyed by object
    identity and pin the spec (``AppSpec`` carries a dict field and is
    unhashable), so a key can never be reused while its entry lives.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._token: tuple | None = None
        self._tables: dict[int, tuple[HierarchyModel, PlatformTable]] = {}
        self._apps: dict[int, AppBlock] = {}
        self._pairs: dict[tuple[int, str], PairBlock] = {}
        self._conc: dict[tuple[int, bool], np.ndarray] = {}
        # Keyed by the full decomposition shape — (ranks, nodes) — so a
        # future cluster-aware vec path can never alias a single-node
        # estimate (today every batched job is single-node: nodes == 1).
        self._comm: dict[tuple[int, str, int, int, bool], object] = {}

    # ---- cached lowering -------------------------------------------------

    def _check_token(self) -> None:
        token = calibration_token()
        if token != self._token:
            self._token = token
            self._tables.clear()
            self._apps.clear()
            self._pairs.clear()
            self._conc.clear()
            self._comm.clear()

    def _table(self, hm: HierarchyModel) -> PlatformTable:
        entry = self._tables.get(id(hm))
        if entry is None:
            entry = self._tables[id(hm)] = (hm, PlatformTable.from_hierarchy(hm))
        return entry[1]

    def _app_block(self, spec: AppSpec) -> AppBlock:
        block = self._apps.get(id(spec))
        if block is None:
            block = self._apps[id(spec)] = AppBlock.from_spec(spec)
        return block

    def _pair_block(self, spec: AppSpec, platform: PlatformSpec) -> PairBlock:
        key = (id(spec), platform.short_name)
        block = self._pairs.get(key)
        if block is None:
            block = self._pairs[key] = PairBlock.from_pair(spec, platform)
        return block

    def _conc_column(
        self, spec: AppSpec, platform: PlatformSpec, config: RunConfig
    ) -> np.ndarray:
        # kernel_concurrency reads the loop, the calibration constants,
        # and whether SMT is active on a CPU — one column per (spec,
        # effective-HT) covers every config.
        ht = bool(config.hyperthreading and platform.kind is DeviceKind.CPU)
        key = (id(spec), ht)
        col = self._conc.get(key)
        if col is None:
            col = self._conc[key] = np.array(
                [kernel_concurrency(platform, config, l) for l in spec.loops],
                dtype=F64,
            )
        return col

    def _comm_estimate(
        self, spec: AppSpec, platform: PlatformSpec, config: RunConfig,
        nranks: int, nodes: int = 1,
    ):
        # estimate_comm reads the config only through ranks() and the
        # hyperthreading flag (which picks the rank placement).
        key = (
            id(spec), platform.short_name, nranks, nodes,
            bool(config.hyperthreading),
        )
        comm = self._comm.get(key)
        if comm is None:
            comm = self._comm[key] = estimate_comm(
                spec, platform, config, nodes=nodes,
            )
        return comm

    # ---- per-job scalar stage --------------------------------------------

    def _job_scalars(
        self,
        spec: AppSpec,
        platform: PlatformSpec,
        config: RunConfig,
        hm: HierarchyModel,
        pt: PlatformTable,
        ab: AppBlock,
    ) -> _JobScalars | None:
        js = _JobScalars()
        js.affinity = spec.affinity(config.compiler)
        if js.affinity <= 0.0:
            return None  # the scalar path raises its documented ValueError
        loop0 = spec.loops[0]
        js.sycl = sycl_time_multiplier(config)
        js.overhead = loop_overhead(platform, config)
        js.mult = bandwidth_multiplier(platform, config, spec, loop0)
        js.tm_ind = (
            traffic_multiplier(platform, config, spec, ab.indirect_rep)
            if ab.indirect_rep is not None
            else 1.0
        )
        js.eff_vals = np.array(
            [effective_flops(platform, config, spec, rep) for rep in ab.combos],
            dtype=F64,
        )
        js.gather_true = ab.gather_reps.get(True)
        js.gather_false = ab.gather_reps.get(False)
        if js.gather_true is not None:
            js.gather_true = gather_throughput(
                platform, config, spec, js.gather_true
            )
        if js.gather_false is not None:
            js.gather_false = gather_throughput(
                platform, config, spec, js.gather_false
            )
        js.reuse = ab.bytes_per_iter * cal.REUSE_TRAFFIC_FACTOR
        js.resident = (
            ab.any_indirect_bytes
            and platform.kind is DeviceKind.CPU
            and ab.gathered_bytes
            <= pt.llc_capacity_total * cal.CACHE_UTILIZATION
        )
        js.cache_hbw = (
            hm.effective_bandwidth(ab.gathered_bytes) if js.resident else 1.0
        )
        js.nranks = config.ranks(platform)
        js.comm = self._comm_estimate(spec, platform, config, js.nranks)
        return js

    # ---- batch evaluation ------------------------------------------------

    def evaluate_many(
        self,
        items: list[tuple[AppSpec, PlatformSpec, RunConfig, HierarchyModel]],
    ) -> list[AppEstimate | None]:
        """Evaluate a batch of points; ``None`` per point that must take
        the scalar path (fallback or failure)."""
        m = active_metrics()
        if m is not None:
            m.observe("vec_batch_jobs", float(len(items)),
                      buckets=BATCH_JOB_BUCKETS)
        with self._lock:
            self._check_token()
            out: list[AppEstimate | None] = [None] * len(items)
            groups: dict[str, list[int]] = {}
            for i, (_spec, platform, _config, _hm) in enumerate(items):
                groups.setdefault(platform.short_name, []).append(i)
            for indices in groups.values():
                try:
                    self._evaluate_group(items, indices, out)
                except Exception:
                    # Safety net: any surprise in the batched math sends
                    # the whole group to the scalar path, which either
                    # produces the number or the documented error.
                    for i in indices:
                        out[i] = None
            return out

    def _evaluate_group(
        self, items: list, indices: list[int], out: list
    ) -> None:
        _spec0, platform, _config0, hm0 = items[indices[0]]
        pt = self._table(hm0)
        is_cpu = platform.kind is DeviceKind.CPU
        m = active_metrics()
        tracer = active_tracer()
        observed = m is not None or tracer is not None
        t_start = time.perf_counter() if observed else 0.0

        jobs = []  # (out index, spec, config, app block, scalars, row offset)
        total = 0
        for i in indices:
            spec, _p, config, hm = items[i]
            ab = self._app_block(spec)
            if ab.needs_scalar:
                continue
            try:
                js = self._job_scalars(spec, platform, config, hm, pt, ab)
            except Exception:
                continue  # infeasible/failing point: scalar path decides
            if js is None:
                continue
            jobs.append((i, spec, config, ab, js, total))
            total += ab.n
        if not jobs:
            return

        R = total
        bytes_c = np.empty(R, dtype=F64)
        tm_c = np.empty(R, dtype=F64)
        sf_c = np.empty(R, dtype=F64)
        state_c = np.empty(R, dtype=F64)
        reuse_c = np.empty(R, dtype=F64)
        eff_c = np.empty(R, dtype=F64)
        flops_c = np.empty(R, dtype=F64)
        gth_c = np.ones(R, dtype=F64)
        ind_c = np.empty(R, dtype=F64)
        indf_c = np.empty(R, dtype=F64)
        inv_c = np.empty(R, dtype=F64)
        aff_c = np.empty(R, dtype=F64)
        sycl_c = np.empty(R, dtype=F64)
        ovh_c = np.empty(R, dtype=F64)
        mult_c = np.empty(R, dtype=F64)
        res_c = np.zeros(R, dtype=bool)
        chbw_c = np.ones(R, dtype=F64)
        conc_c = np.empty(R, dtype=F64) if is_cpu else None

        for i, spec, config, ab, js, s in jobs:
            e = s + ab.n
            bytes_c[s:e] = ab.bytes_f
            flops_c[s:e] = ab.flops_f
            pb = self._pair_block(spec, platform)
            sf_c[s:e] = pb.stencil
            if ab.indirect_rep is None or js.tm_ind == 1.0:
                tm_c[s:e] = 1.0
            else:
                tm_c[s:e] = np.where(ab.has_indirect, js.tm_ind, 1.0)
            state_c[s:e] = ab.state_bytes
            reuse_c[s:e] = js.reuse
            eff_c[s:e] = js.eff_vals[ab.combo_codes]
            if ab.gather_reps:
                gth_c[s:e] = np.where(
                    ab.vec_mask,
                    js.gather_true if js.gather_true is not None else 1.0,
                    js.gather_false if js.gather_false is not None else 1.0,
                )
            ind_c[s:e] = ab.indirect_count
            indf_c[s:e] = ab.ind_frac
            inv_c[s:e] = ab.invocations
            aff_c[s:e] = js.affinity
            sycl_c[s:e] = js.sycl
            ovh_c[s:e] = js.overhead
            mult_c[s:e] = js.mult
            if js.resident:
                res_c[s:e] = ab.has_indirect_bytes
                chbw_c[s:e] = js.cache_hbw
            if is_cpu:
                conc_c[s:e] = self._conc_column(spec, platform, config)

        t_lowered = 0.0
        if observed:
            t_lowered = time.perf_counter()
            if m is not None:
                m.observe("vec_lower_seconds", t_lowered - t_start,
                          platform=platform.short_name)
            if tracer is not None:
                tracer.wall_span(
                    "vec", f"lower:{platform.short_name}", t_start, t_lowered,
                    track=("vec", threading.current_thread().name),
                    jobs=len(jobs), rows=R,
                )

        # traffic = (bytes * traffic_multiplier) * stencil_factor
        traffic = bytes_c * tm_c
        traffic *= sf_c
        # working set: max(traffic, state, reuse traffic, 1.0), then the
        # innermost hierarchy level with room decides hbw and the level
        # code (outermost applied first so the innermost match wins).
        ws = np.maximum(
            np.maximum(np.maximum(traffic, state_c), reuse_c), 1.0
        )
        nlev = len(pt.thresholds)
        hbw = np.full(R, pt.memory_bw, dtype=F64)
        lvl = np.full(R, nlev, dtype=np.intp)
        for li in range(nlev - 1, -1, -1):
            mask = ws <= pt.thresholds[li]
            hbw[mask] = pt.level_bws[li]
            lvl[mask] = li

        if pt.is_gpu:
            bw = hbw * mult_c
            t_bw = traffic / bw
        else:
            derate = cal.APP_STREAM_DERATE
            hd = hbw * derate
            per_core = (conc_c * pt.line_size) / pt.mem_latency
            ceiling = per_core * pt.total_cores
            bw = np.where(
                hbw > pt.cache_cutoff,
                hd * mult_c,
                np.minimum(hd, ceiling) * mult_c,
            )
            t_bw = traffic / bw
            if res_c.any():
                # Gathered-field LLC residency: re-price the indirect
                # share at the cache-working-set bandwidth.
                chd = chbw_c * derate
                cbw = np.where(
                    chbw_c > pt.cache_cutoff,
                    chd * mult_c,
                    np.minimum(chd, ceiling) * mult_c,
                )
                alt = (traffic * (1.0 - indf_c)) / bw + (
                    traffic * indf_c
                ) / cbw
                t_bw = np.where(res_c, alt, t_bw)

        t_fl = flops_c / eff_c
        t_lat = ind_c / gth_c

        # p-norm blend, row-wise in Python: t**p and the 1/p root must
        # be the scalar path's C pow, and the term sum its ordered sum.
        tb_l = t_bw.tolist()
        tf_l = t_fl.tolist()
        tl_l = t_lat.tolist()
        p = cal.BOTTLENECK_PNORM
        ip = 1.0 / p
        pw = math.pow
        core0 = []
        push = core0.append
        for a, b, c in zip(tb_l, tf_l, tl_l):
            s = 0.0
            if a > 0.0:
                s = pw(a, p)
            if b > 0.0:
                s = s + pw(b, p)
            if c > 0.0:
                s = s + pw(c, p)
            push(pw(s, ip) if s > 0.0 else 0.0)

        core = (np.asarray(core0, dtype=F64) * sycl_c) / aff_c
        ovh_row = ovh_c * inv_c
        time_c = core + ovh_row

        t_passed = 0.0
        if observed:
            t_passed = time.perf_counter()
            if tracer is not None:
                tracer.wall_span(
                    "vec", f"pass:{platform.short_name}", t_lowered, t_passed,
                    track=("vec", threading.current_thread().name), rows=R,
                )
        if m is not None:
            # Attribution synthesized from the batch columns: winning-
            # limb and serving-level tallies are array reductions, so a
            # metered batch pays a handful of registry increments and
            # zero per-row Python.  The >=-chain is LoopTime.bottleneck's
            # first-maximum tie-break in bandwidth/compute/latency order.
            pname = platform.short_name
            bw_win = (t_bw >= t_fl) & (t_bw >= t_lat)
            cp_win = ~bw_win & (t_fl >= t_lat)
            for limb, mask in (
                ("bandwidth", bw_win),
                ("compute", cp_win),
                ("latency", ~bw_win & ~cp_win),
            ):
                count = int(np.count_nonzero(mask))
                if count:
                    m.inc("perfmodel_loops_total", count,
                          limb=limb, platform=pname)
                    m.inc("perfmodel_loop_seconds_total",
                          float(time_c[mask].sum()), limb=limb,
                          platform=pname)
            for li, count in enumerate(
                np.bincount(lvl, minlength=nlev + 1).tolist()
            ):
                if count:
                    m.inc("mem_hierarchy_lookups_total", count,
                          platform=pname, level=pt.level_names[li])
            app_tally: dict[str, int] = {}  # app -> estimates

        time_l = time_c.tolist()
        ovh_l = ovh_row.tolist()
        lvl_l = lvl.tolist()
        names = pt.level_names
        new = LoopTime.__new__

        for i, spec, config, ab, js, s in jobs:
            e = s + ab.n
            times = time_l[s:e]
            lts = []
            push_lt = lts.append
            for nm, t, tb, tf, tl, ov, cb, fl, lv in zip(
                ab.names, times, tb_l[s:e], tf_l[s:e], tl_l[s:e],
                ovh_l[s:e], ab.bytes_raw, ab.flops_raw, lvl_l[s:e],
            ):
                lt = new(LoopTime)
                lt.__dict__.update(
                    name=nm, time=t, t_bandwidth=tb, t_compute=tf,
                    t_latency=tl, overhead=ov, counted_bytes=cb, flops=fl,
                    mem_level=names[lv],
                )
                push_lt(lt)
            compute_per_iter = sum(times)
            imbalance = (
                compute_per_iter
                * cal.IMBALANCE_PER_LOG2_RANKS
                * math.log2(js.nranks)
                if is_cpu and js.nranks > 1
                else 0.0
            )
            mpi_per_iter = js.comm.time_per_iter + imbalance
            n = spec.iterations
            out[i] = AppEstimate(
                app=spec.name,
                platform=platform.short_name,
                config_label=config.label(),
                total_time=(compute_per_iter + mpi_per_iter) * n,
                compute_time=compute_per_iter * n,
                mpi_time=mpi_per_iter * n,
                per_loop=tuple(lts),
                counted_bytes=sum(ab.bytes_raw) * n,
                flops=sum(ab.flops_raw) * n,
                comm=js.comm,
            )
            if m is not None:
                app_tally[spec.name] = app_tally.get(spec.name, 0) + 1
            if tracer is not None:
                tracer.event(
                    "perfmodel", f"estimate:{spec.name}", 0.0,
                    track=("perfmodel", 0),
                    platform=platform.short_name, config=config.label(),
                    compute_per_iter=compute_per_iter,
                    mpi_per_iter=mpi_per_iter,
                    comm_per_iter=js.comm.time_per_iter,
                    imbalance=imbalance, iterations=n, loops=len(lts),
                )

        if m is not None:
            for app_name in sorted(app_tally):
                m.inc("perfmodel_estimates_total", app_tally[app_name],
                      app=app_name, platform=pname)
        if observed:
            t_end = time.perf_counter()
            if tracer is not None:
                tracer.wall_span(
                    "vec", f"scatter:{platform.short_name}", t_passed, t_end,
                    track=("vec", threading.current_thread().name),
                    jobs=len(jobs),
                )
            if m is not None:
                m.observe("vec_eval_seconds", t_end - t_start,
                          platform=platform.short_name)
