"""The array IR: per-platform, per-app and per-pair constant tables.

One evaluation batch is a matrix with **one row per (job, loop)**,
grouped by platform (platform parameters are scalars within a group).
The containers here hold the row constants that do not depend on the
:class:`~repro.machine.config.RunConfig`:

- :class:`PlatformTable` — the platform scalars and the cache-hierarchy
  threshold/bandwidth vectors (from the
  :class:`~repro.mem.hierarchy.HierarchyModel`);
- :class:`AppBlock` — the per-loop columns of one application spec
  (bytes, flops, indirect counts, invocation counts, masks) plus the
  representative loops the config-dependent scalar helpers are probed
  with;
- :class:`PairBlock` — the (app, platform) columns: the stencil traffic
  factors, which depend on the platform's L2 but not on the config or
  on any calibration constant.

Column dtypes are ``float64`` throughout (plus boolean masks and an
integer memory-level code vector); float64 elementwise arithmetic is
bit-identical to the scalar model's IEEE-754 double operations, which
is what the golden-equivalence gate relies on.  Quantities whose scalar
evaluation is *not* elementwise-reproducible in numpy (``**``,
``math.log2``, ordered Python ``sum``) are deliberately kept out of the
arrays — the evaluator computes those row-wise in Python (see
``docs/VECTOR.md``).

Calibration constants are mutable (:func:`repro.perfmodel.calibration.
override`), so every cache of lowered blocks must be keyed by
:func:`calibration_token` — a snapshot tuple of all upper-case
calibration values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.spec import DeviceKind, PlatformSpec
from ..mem.hierarchy import HierarchyModel, Scope
from ..perfmodel import calibration as cal
from ..perfmodel.kernelmodel import AppSpec, LoopSpec

__all__ = ["PlatformTable", "AppBlock", "PairBlock", "calibration_token"]

F64 = np.float64

#: All calibration constants, by (sorted) name — the snapshot key space.
_CAL_KEYS = tuple(sorted(k for k in vars(cal) if k.isupper()))


def calibration_token() -> tuple:
    """Hashable snapshot of every calibration constant.

    Lowered blocks bake calibration values in; a cache of blocks is
    valid exactly as long as this token is unchanged (the
    ``calibration.override`` context manager mutates module globals).
    """
    vals = []
    for key in _CAL_KEYS:
        val = getattr(cal, key)
        if isinstance(val, dict):
            val = tuple(sorted(val.items()))
        vals.append(val)
    return tuple(vals)


@dataclass(frozen=True)
class PlatformTable:
    """Platform scalars + hierarchy vectors for one evaluation group.

    ``thresholds[i]``/``level_bws[i]`` reproduce
    :meth:`HierarchyModel.serving_level` at node scope: a working set is
    served by the innermost level ``i`` with ``ws <= thresholds[i]``
    (capacity x utilization), at ``min(bandwidth, core-throughput
    ceiling)``; past the last level it is served at ``memory_bw``.
    ``level_names`` appends ``"memory"`` so a level code of
    ``len(thresholds)`` indexes the memory name directly.
    """

    platform: PlatformSpec
    level_names: tuple[str, ...]  # innermost-first cache names + "memory"
    thresholds: np.ndarray  # float64: aggregate capacity * utilization
    level_bws: np.ndarray  # float64: min(aggregate bw, core ceiling)
    memory_bw: float  # min(STREAM bw, core ceiling)
    cache_cutoff: float  # stream_bandwidth * 1.01 (cache-resident test)
    llc_capacity_total: float  # platform.cache_capacity_total(LLC)
    line_size: float  # innermost cache line (bytes)
    mem_latency: float  # platform.memory.latency (seconds)
    total_cores: int
    is_gpu: bool

    @classmethod
    def from_hierarchy(cls, hm: HierarchyModel) -> "PlatformTable":
        p = hm.platform
        levels = hm.aggregate_levels(Scope.NODE)
        ceiling = hm.core_throughput_ceiling(Scope.NODE)
        return cls(
            platform=p,
            level_names=tuple(lvl.name for lvl in p.caches) + ("memory",),
            thresholds=np.array(
                [cap * hm.utilization for cap, _ in levels], dtype=F64
            ),
            level_bws=np.array(
                [min(bw, ceiling) for _, bw in levels], dtype=F64
            ),
            memory_bw=min(hm.memory_bandwidth(Scope.NODE), ceiling),
            cache_cutoff=p.stream_bandwidth * 1.01,
            llc_capacity_total=p.cache_capacity_total(
                p.last_level_cache.name
            ),
            line_size=p.caches[0].line_size,
            mem_latency=p.memory.latency,
            total_cores=p.total_cores,
            is_gpu=p.kind is DeviceKind.GPU,
        )


@dataclass
class AppBlock:
    """Per-loop column block of one application spec (config-free).

    ``bytes_raw``/``flops_raw`` keep the *original* Python values of
    ``loop.bytes_total``/``loop.flops_total`` — the structured dialect
    reports integral byte counts and the int-vs-float distinction is
    part of the observable surface (store bytes, golden baseline), so
    the assembled :class:`~repro.perfmodel.roofline.LoopTime` and the
    ``counted_bytes``/``flops`` totals are built from these, never from
    the float64 columns.

    ``combos``/``combo_codes`` index the distinct (dtype_bytes,
    vectorizable) classes: :func:`~repro.perfmodel.configmodel.
    effective_flops` depends on the loop only through that pair, so the
    evaluator probes the scalar function once per class per job and
    scatters the values by code.  ``gather_reps`` does the same for
    :func:`~repro.perfmodel.configmodel.gather_throughput` (loop
    dependence: ``vectorizable`` only), over the loops that actually
    have indirect accesses.  ``indirect_rep`` is any loop with
    ``indirect_per_point > 0`` — the probe for
    :func:`~repro.perfmodel.configmodel.traffic_multiplier`, which is
    uniform across such loops for a given config.

    ``needs_scalar`` marks a spec the vectorized path refuses (it would
    diverge from — or fail differently than — the scalar path); the
    engine then evaluates those jobs per-loop as before.
    """

    spec: AppSpec
    n: int
    names: list[str]
    bytes_raw: list  # loop.bytes_total, original int/float objects
    flops_raw: list  # loop.flops_total, original int/float objects
    bytes_f: np.ndarray  # float64 copy of bytes_raw
    flops_f: np.ndarray  # float64 copy of flops_raw
    indirect_count: np.ndarray  # float64: points * indirect_per_point
    has_indirect: np.ndarray  # bool: indirect_per_point > 0
    has_indirect_bytes: np.ndarray  # bool: indirect_bytes_per_point > 0
    ind_frac: np.ndarray  # float64: min(ind_bytes/bytes_per_point, 1.0)
    invocations: np.ndarray  # float64: max(loop.invocations, 1.0)
    vec_mask: np.ndarray  # bool: loop.vectorizable
    combo_codes: np.ndarray  # intp index into combos, per loop
    combos: list[LoopSpec]  # representative per (dtype, vectorizable)
    gather_reps: dict[bool, LoopSpec]  # representative per vectorizable
    indirect_rep: LoopSpec | None
    bytes_per_iter: float  # spec.bytes_per_iteration() (may be int)
    state_bytes: float
    gathered_bytes: float  # gridpoints * 4.0 * dtype_bytes
    any_indirect_bytes: bool
    needs_scalar: bool

    @classmethod
    def from_spec(cls, spec: AppSpec) -> "AppBlock":
        loops = spec.loops
        bytes_raw = [l.bytes_total for l in loops]
        flops_raw = [l.flops_total for l in loops]
        combos: list[LoopSpec] = []
        combo_key: dict[tuple, int] = {}
        codes = []
        gather_reps: dict[bool, LoopSpec] = {}
        indirect_rep = None
        needs_scalar = False
        ind_frac = []
        for loop in loops:
            key = (loop.dtype_bytes, loop.vectorizable)
            if key not in combo_key:
                combo_key[key] = len(combos)
                combos.append(loop)
            codes.append(combo_key[key])
            if loop.indirect_per_point > 0:
                if indirect_rep is None:
                    indirect_rep = loop
                gather_reps.setdefault(bool(loop.vectorizable), loop)
            if loop.indirect_bytes_per_point > 0:
                if loop.bytes_per_point == 0:
                    # The scalar gathered-residency branch divides by
                    # bytes_per_point; let the scalar path raise (or
                    # not) exactly as it always did.
                    needs_scalar = True
                    ind_frac.append(0.0)
                else:
                    ind_frac.append(
                        min(
                            loop.indirect_bytes_per_point
                            / loop.bytes_per_point,
                            1.0,
                        )
                    )
            else:
                ind_frac.append(0.0)
        return cls(
            spec=spec,
            n=len(loops),
            names=[l.name for l in loops],
            bytes_raw=bytes_raw,
            flops_raw=flops_raw,
            bytes_f=np.array(bytes_raw, dtype=F64),
            flops_f=np.array(flops_raw, dtype=F64),
            indirect_count=np.array(
                [l.points * l.indirect_per_point for l in loops], dtype=F64
            ),
            has_indirect=np.array(
                [l.indirect_per_point > 0 for l in loops], dtype=bool
            ),
            has_indirect_bytes=np.array(
                [l.indirect_bytes_per_point > 0 for l in loops], dtype=bool
            ),
            ind_frac=np.array(ind_frac, dtype=F64),
            invocations=np.array(
                [max(l.invocations, 1.0) for l in loops], dtype=F64
            ),
            vec_mask=np.array([l.vectorizable for l in loops], dtype=bool),
            combo_codes=np.array(codes, dtype=np.intp),
            combos=combos,
            gather_reps=gather_reps,
            indirect_rep=indirect_rep,
            bytes_per_iter=spec.bytes_per_iteration(),
            state_bytes=spec.state_bytes,
            gathered_bytes=spec.gridpoints * 4.0 * spec.dtype_bytes,
            any_indirect_bytes=any(
                l.indirect_bytes_per_point > 0 for l in loops
            ),
            needs_scalar=needs_scalar,
        )


@dataclass(frozen=True)
class PairBlock:
    """(app, platform) columns: the per-loop stencil traffic factors.

    :func:`~repro.perfmodel.kernelmodel.stencil_traffic_factor` reads
    the loop, the platform's L2 capacity and the app's dimensionality —
    no config, no calibration constant — so the factor vector is pure
    per pair and computed once with the scalar function itself
    (``math.log2`` inside it is not numpy-reproducible bit-for-bit).
    """

    stencil: np.ndarray  # float64, one factor per loop

    @classmethod
    def from_pair(cls, spec: AppSpec, platform: PlatformSpec) -> "PairBlock":
        from ..perfmodel.kernelmodel import stencil_traffic_factor

        return cls(
            stencil=np.array(
                [
                    stencil_traffic_factor(
                        loop,
                        platform,
                        loop.points / platform.total_cores,
                        spec.ndims,
                    )
                    for loop in spec.loops
                ],
                dtype=F64,
            )
        )
