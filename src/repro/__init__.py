"""repro — reproduction of "Comparative evaluation of bandwidth-bound
applications on the Intel Xeon CPU MAX Series" (I. Z. Reguly, SC 2023).

The package rebuilds, in pure Python/numpy, the full software stack the
paper's measurements rest on — platform models of the four machines, a
memory-hierarchy simulator, a simulated MPI runtime, OPS/OP2-style
structured/unstructured mesh DSLs, the seven benchmarked applications,
and a harness that regenerates every figure of the evaluation.  An
observability layer (:mod:`repro.obs`) threads span-based tracing
through all of it — see docs/ARCHITECTURE.md for the layer map and
docs/TRACING.md for the trace tooling.

Quick start::

    from repro.machine import XEON_MAX_9480, best_practice_config
    from repro.harness import run_application

    result = run_application("cloverleaf2d", XEON_MAX_9480,
                             best_practice_config(XEON_MAX_9480))
    print(result.total_time, result.mpi_fraction)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-model comparison of every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "machine", "mem", "simmpi", "perfmodel", "ops", "op2", "apps",
    "engine", "harness", "obs",
]
